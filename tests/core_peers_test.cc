// Tests for the peer roles: IndexingPeer (inverted lists, query history,
// poll handling with closest-hash dedup) and OwnerPeer (initial term
// selection, Algorithm-1 retuning, static eSearch growth).

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/indexing_peer.h"
#include "core/owner_peer.h"
#include "dht/id_space.h"

namespace sprite::core {
namespace {

text::TermVector TV(const std::vector<std::string>& tokens) {
  return text::TermVector::FromTokens(tokens);
}

PostingEntry Posting(DocId doc, uint32_t tf = 1, uint32_t len = 10,
                     uint32_t distinct = 5) {
  return PostingEntry{doc, /*owner=*/99, tf, len, distinct};
}

// Interns a spelling in the global dictionary (the one the system uses).
TermId T(const std::string& term) {
  return text::TermDict::Global().Intern(term);
}

std::vector<TermId> Ts(const std::vector<std::string>& terms) {
  std::vector<TermId> ids;
  ids.reserve(terms.size());
  for (const std::string& term : terms) ids.push_back(T(term));
  return ids;
}

PostingListPtr PL(std::vector<PostingEntry> entries) {
  return std::make_shared<PostingList>(std::move(entries));
}

// Wraps doc-sorted entries in the immutable store object StoreReplica /
// CachePostings now take.
StoredPostingsPtr SP(std::vector<PostingEntry> entries) {
  return StoredPostings::FromSortedList(std::move(entries), {});
}

// Adapter keeping the poll tests in the string domain: interns the terms
// and derives the ring keys the caller of CollectQueriesForPoll now
// precomputes from the TermDict.
std::vector<const QueryRecord*> Poll(
    const IndexingPeer& peer, const std::vector<std::string>& poll_terms,
    const std::vector<std::string>& my_terms,
    const std::unordered_map<std::string, uint64_t>& cursor,
    const dht::IdSpace& space) {
  const text::TermDict& dict = text::TermDict::Global();
  std::vector<TermId> poll_ids = Ts(poll_terms);
  std::vector<uint64_t> poll_keys;
  poll_keys.reserve(poll_ids.size());
  for (const TermId id : poll_ids) {
    poll_keys.push_back(space.Truncate(dict.RawKeyOf(id)));
  }
  std::unordered_map<TermId, uint64_t> id_cursor;
  for (const auto& [term, seq] : cursor) id_cursor[T(term)] = seq;
  return peer.CollectQueriesForPoll(poll_ids, poll_keys, Ts(my_terms),
                                    id_cursor, space);
}

// ------------------------------------------------------------ IndexingPeer

TEST(IndexingPeerTest, AddAndFetchPostings) {
  IndexingPeer peer(1, 100);
  peer.AddPosting(T("cat"), Posting(0, 3));
  peer.AddPosting(T("cat"), Posting(1, 1));
  peer.AddPosting(T("dog"), Posting(0, 2));
  ASSERT_NE(peer.Postings(T("cat")), nullptr);
  EXPECT_EQ(peer.Postings(T("cat"))->size(), 2u);
  EXPECT_EQ(peer.IndexedDocFreq(T("cat")), 2u);
  EXPECT_EQ(peer.IndexedDocFreq(T("fish")), 0u);
  EXPECT_EQ(peer.num_terms(), 2u);
  EXPECT_EQ(peer.num_postings(), 3u);
  EXPECT_EQ(peer.Postings(T("fish")), nullptr);
}

TEST(IndexingPeerTest, AddPostingOverwritesSameDoc) {
  IndexingPeer peer(1, 100);
  peer.AddPosting(T("cat"), Posting(0, 3));
  peer.AddPosting(T("cat"), Posting(0, 7));
  ASSERT_EQ(peer.Postings(T("cat"))->size(), 1u);
  EXPECT_EQ(peer.Postings(T("cat"))->front().term_freq, 7u);
}

TEST(IndexingPeerTest, RemovePosting) {
  IndexingPeer peer(1, 100);
  peer.AddPosting(T("cat"), Posting(0));
  peer.AddPosting(T("cat"), Posting(1));
  EXPECT_TRUE(peer.RemovePosting(T("cat"), 0));
  EXPECT_FALSE(peer.RemovePosting(T("cat"), 0));   // already gone
  EXPECT_FALSE(peer.RemovePosting(T("none"), 0));  // unknown term
  EXPECT_EQ(peer.IndexedDocFreq(T("cat")), 1u);
  EXPECT_TRUE(peer.RemovePosting(T("cat"), 1));
  EXPECT_EQ(peer.Postings(T("cat")), nullptr);     // empty list pruned
  EXPECT_EQ(peer.num_terms(), 0u);
}

TEST(IndexingPeerTest, ReplicaServesWhenPrimaryAbsent) {
  IndexingPeer peer(1, 100);
  peer.StoreReplica(T("cat"), SP({Posting(3)}));
  ASSERT_NE(peer.Postings(T("cat")), nullptr);
  EXPECT_EQ(peer.Postings(T("cat"))->front().doc, 3u);
  // Replica does not count toward the primary indexed document frequency.
  EXPECT_EQ(peer.IndexedDocFreq(T("cat")), 0u);
  EXPECT_EQ(peer.num_replica_terms(), 1u);
  peer.ClearReplicas();
  EXPECT_EQ(peer.Postings(T("cat")), nullptr);
}

TEST(IndexingPeerTest, PrimaryShadowsReplica) {
  IndexingPeer peer(1, 100);
  peer.StoreReplica(T("cat"), SP({Posting(3)}));
  peer.AddPosting(T("cat"), Posting(5));
  EXPECT_EQ(peer.Postings(T("cat"))->front().doc, 5u);
}

// A fetched snapshot must stay frozen across later mutations — the
// copy-on-write guarantee the zero-copy fetch path relies on.
TEST(IndexingPeerTest, SnapshotIsImmuneToLaterMutations) {
  IndexingPeer peer(1, 100);
  peer.AddPosting(T("cat"), Posting(1, 3));
  PostingListPtr snapshot = peer.Postings(T("cat"));
  ASSERT_NE(snapshot, nullptr);
  ASSERT_EQ(snapshot->size(), 1u);

  peer.AddPosting(T("cat"), Posting(2, 5));  // append
  peer.AddPosting(T("cat"), Posting(1, 9));  // overwrite doc 1
  peer.RemovePosting(T("cat"), 1);           // remove doc 1

  EXPECT_EQ(snapshot->size(), 1u);
  EXPECT_EQ(snapshot->front().doc, 1u);
  EXPECT_EQ(snapshot->front().term_freq, 3u);
  // The live list moved on without doc 1.
  ASSERT_NE(peer.Postings(T("cat")), nullptr);
  EXPECT_EQ(peer.Postings(T("cat"))->front().doc, 2u);
}

// Regression: a withdrawal must scrub the local replica and hot-term cache
// too, or the replica fallback above resurrects the withdrawn document.
TEST(IndexingPeerTest, RemovePostingScrubsReplicaAndCache) {
  IndexingPeer peer(1, 100);
  peer.AddPosting(T("cat"), Posting(7));
  peer.StoreReplica(T("cat"), SP({Posting(7), Posting(8)}));
  peer.CachePostings(T("cat"), SP({Posting(7)}));

  EXPECT_TRUE(peer.RemovePosting(T("cat"), 7));

  // Primary gone; the fallback may serve the replica, but never doc 7.
  PostingListPtr served = peer.Postings(T("cat"));
  ASSERT_NE(served, nullptr);  // doc 8's replica survives
  for (const PostingEntry& p : *served) EXPECT_NE(p.doc, 7u);
  PostingListPtr cached = peer.CachedPostings(T("cat"));
  EXPECT_EQ(cached, nullptr);  // cache emptied and pruned

  // Removing the survivor empties the replica store as well.
  EXPECT_FALSE(peer.RemovePosting(T("cat"), 8));  // no primary posting
  EXPECT_EQ(peer.Postings(T("cat")), nullptr);
  EXPECT_EQ(peer.num_replica_terms(), 0u);
}

TEST(IndexingPeerTest, HistoryEvictsOldest) {
  IndexingPeer peer(1, 3);
  for (uint64_t i = 1; i <= 5; ++i) {
    QueryRecord r;
    r.seq = i;
    r.terms = {T("t")};
    peer.RecordQuery(r);
  }
  ASSERT_EQ(peer.history().size(), 3u);
  EXPECT_EQ(peer.history().front().seq, 3u);
  EXPECT_EQ(peer.history().back().seq, 5u);
}

TEST(IndexingPeerTest, ZeroCapacityHistoryStoresNothing) {
  IndexingPeer peer(1, 0);
  QueryRecord r;
  r.seq = 1;
  peer.RecordQuery(r);
  EXPECT_TRUE(peer.history().empty());
}

// -------------------------------------------------------- ClosestTermIndex

TEST(ClosestTermIndexTest, PicksMinimalClockwiseDistance) {
  dht::IdSpace space(8);
  // query key 100; term keys 110 (distance 10), 90 (distance 246), 105 (5).
  EXPECT_EQ(ClosestTermIndex({110, 90, 105}, 100, space), 2u);
}

TEST(ClosestTermIndexTest, TieBreaksOnSmallerKey) {
  dht::IdSpace space(8);
  // keys 4 and 8: wait, equal distance requires equal keys in a modular
  // ring unless duplicated; use duplicate distances via wrap: from 250,
  // keys 2 and 2 are identical — instead test exact duplicates.
  EXPECT_EQ(ClosestTermIndex({7, 7}, 3, space), 0u);
}

TEST(ClosestTermIndexTest, SingleCandidate) {
  dht::IdSpace space(8);
  EXPECT_EQ(ClosestTermIndex({200}, 10, space), 0u);
}

// --------------------------------------------------- CollectQueriesForPoll

class PollTest : public ::testing::Test {
 protected:
  PollTest() : space_(16), peer_(1, 100) {}

  QueryRecord MakeRecord(uint64_t seq, std::vector<std::string> terms) {
    QueryRecord r;
    r.id = static_cast<QueryId>(seq);
    corpus::Query q{r.id, terms};
    r.hash_key = space_.KeyForString(q.CanonicalKey());
    r.seq = seq;
    r.terms = Ts(terms);
    return r;
  }

  dht::IdSpace space_;
  IndexingPeer peer_;
};

TEST_F(PollTest, ReturnsQueriesContainingMyTerms) {
  peer_.RecordQuery(MakeRecord(1, {"alpha", "zzz"}));
  peer_.RecordQuery(MakeRecord(2, {"unrelated"}));
  auto got = Poll(peer_, {"alpha"}, {"alpha"}, {}, space_);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]->seq, 1u);
}

TEST_F(PollTest, CursorFiltersOldQueries) {
  peer_.RecordQuery(MakeRecord(1, {"alpha"}));
  peer_.RecordQuery(MakeRecord(5, {"alpha"}));
  std::unordered_map<std::string, uint64_t> cursor{{"alpha", 3}};
  auto got = Poll(peer_, {"alpha"}, {"alpha"}, cursor, space_);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]->seq, 5u);
}

TEST_F(PollTest, EmptyMyTermsReturnsNothing) {
  peer_.RecordQuery(MakeRecord(1, {"alpha"}));
  EXPECT_TRUE(Poll(peer_, {"alpha"}, {}, {}, space_).empty());
}

// The dedup property of Section 3: when a query contains several of the
// polled terms, exactly one peer (the one owning the closest term) returns
// it — regardless of how the terms are distributed over peers.
TEST_F(PollTest, EachQueryReturnedByExactlyOnePartition) {
  const std::vector<std::string> poll_terms{"alpha", "beta", "gamma",
                                            "delta"};
  QueryRecord multi = MakeRecord(1, {"alpha", "beta", "gamma"});

  // Try every 2-partition of the poll terms over two peers.
  for (unsigned mask = 0; mask < 16; ++mask) {
    IndexingPeer peer_a(1, 10), peer_b(2, 10);
    peer_a.RecordQuery(multi);
    peer_b.RecordQuery(multi);
    std::vector<std::string> terms_a, terms_b;
    for (size_t i = 0; i < poll_terms.size(); ++i) {
      ((mask >> i) & 1 ? terms_a : terms_b).push_back(poll_terms[i]);
    }
    const size_t got = Poll(peer_a, poll_terms, terms_a, {}, space_).size() +
                       Poll(peer_b, poll_terms, terms_b, {}, space_).size();
    EXPECT_EQ(got, 1u) << "mask " << mask;
  }
}

TEST_F(PollTest, QueryWithoutAnyPolledTermIgnored) {
  peer_.RecordQuery(MakeRecord(1, {"other"}));
  EXPECT_TRUE(Poll(peer_, {"alpha", "beta"}, {"alpha"}, {}, space_).empty());
}

// ----------------------------------------------------------------- Owner

corpus::Document MakeDoc(DocId id, const std::vector<std::string>& tokens) {
  corpus::Document doc;
  doc.id = id;
  doc.terms = TV(tokens);
  return doc;
}

TEST(OwnerPeerTest, SelectInitialTermsTopFrequency) {
  corpus::Document doc =
      MakeDoc(0, {"x", "x", "x", "y", "y", "z", "w", "w", "w", "w"});
  auto terms = OwnerPeer::SelectInitialTerms(doc, 2);
  EXPECT_EQ(terms, (std::vector<std::string>{"w", "x"}));
}

TEST(OwnerPeerTest, AdoptAndLookup) {
  OwnerPeer owner(7);
  corpus::Document doc = MakeDoc(3, {"a"});
  owner.AdoptDocument(&doc);
  EXPECT_EQ(owner.num_documents(), 1u);
  ASSERT_NE(owner.document(3), nullptr);
  EXPECT_EQ(owner.document(4), nullptr);
  EXPECT_EQ(owner.id(), 7u);
}

QueryRecord Rec(uint64_t seq, const std::vector<std::string>& terms) {
  QueryRecord r;
  r.id = static_cast<QueryId>(seq);
  r.terms = Ts(terms);
  r.hash_key = seq;
  r.seq = seq;
  return r;
}

TEST(OwnerPeerTest, LearnAddsQueriedTerms) {
  OwnerPeer owner(1);
  corpus::Document doc = MakeDoc(0, {"a", "a", "a", "b", "b", "c", "d", "e"});
  OwnedDocument& owned = owner.AdoptDocument(&doc);
  owned.index_terms = {"a", "b"};  // initial frequent terms

  SpriteConfig config;
  config.initial_terms = 2;
  config.terms_per_iteration = 2;
  config.max_index_terms = 10;

  QueryRecord q1 = Rec(1, {"d", "e"});
  QueryRecord q2 = Rec(2, {"d"});
  auto update = owner.LearnAndRetune(owned, {&q1, &q2}, config);

  // d has QF 2 (score > 0), e has QF 1 (score 0) — both beat nothing else,
  // and the budget is 2 additions.
  EXPECT_EQ(update.add, (std::vector<std::string>{"d", "e"}));
  EXPECT_TRUE(update.remove.empty());
  EXPECT_EQ(owned.index_terms,
            (std::vector<std::string>{"a", "b", "d", "e"}));
}

TEST(OwnerPeerTest, CapEvictsLowestRanked) {
  OwnerPeer owner(1);
  corpus::Document doc = MakeDoc(0, {"a", "a", "a", "b", "b", "c", "d"});
  OwnedDocument& owned = owner.AdoptDocument(&doc);
  owned.index_terms = {"a", "b", "c"};

  SpriteConfig config;
  config.terms_per_iteration = 2;
  config.max_index_terms = 3;  // already full

  // d is queried twice (positive score); a queried twice too; b once;
  // c never (sentinel -1) -> c must be evicted when d arrives.
  QueryRecord q1 = Rec(1, {"d", "a"});
  QueryRecord q2 = Rec(2, {"d", "a"});
  auto update = owner.LearnAndRetune(owned, {&q1, &q2}, config);

  EXPECT_EQ(update.add, (std::vector<std::string>{"d"}));
  EXPECT_EQ(update.remove, (std::vector<std::string>{"c"}));
  EXPECT_EQ(owned.index_terms.size(), 3u);
  EXPECT_TRUE(owned.IsIndexed("d"));
  EXPECT_FALSE(owned.IsIndexed("c"));
}

TEST(OwnerPeerTest, ProcessedSeqsPreventDoubleCounting) {
  OwnerPeer owner(1);
  corpus::Document doc = MakeDoc(0, {"a", "b"});
  OwnedDocument& owned = owner.AdoptDocument(&doc);
  owned.index_terms = {"a"};

  SpriteConfig config;
  config.terms_per_iteration = 1;
  config.max_index_terms = 5;

  QueryRecord q = Rec(1, {"a"});
  owner.LearnAndRetune(owned, {&q}, config);
  owner.LearnAndRetune(owned, {&q}, config);  // same issuance offered again
  EXPECT_EQ(owned.stats["a"].query_freq, 1u);
}

TEST(OwnerPeerTest, UnqueriedNewTermsNotAdded) {
  OwnerPeer owner(1);
  corpus::Document doc = MakeDoc(0, {"a", "b", "c"});
  OwnedDocument& owned = owner.AdoptDocument(&doc);
  owned.index_terms = {"a"};
  SpriteConfig config;
  auto update = owner.LearnAndRetune(owned, {}, config);
  EXPECT_TRUE(update.add.empty());
  EXPECT_TRUE(update.remove.empty());
}

TEST(OwnerPeerTest, GrowStaticAddsNextFrequentTerms) {
  OwnerPeer owner(1);
  corpus::Document doc =
      MakeDoc(0, {"a", "a", "a", "b", "b", "c", "c", "d", "e"});
  OwnedDocument& owned = owner.AdoptDocument(&doc);
  owned.index_terms = {"a"};

  SpriteConfig config;
  config.terms_per_iteration = 2;
  config.max_index_terms = 10;
  auto update = owner.GrowStatic(owned, config);
  // Next most frequent after a: b (2), then c (2, lexicographic tie).
  EXPECT_EQ(update.add, (std::vector<std::string>{"b", "c"}));
  EXPECT_TRUE(update.remove.empty());
}

TEST(OwnerPeerTest, GrowStaticRespectsCap) {
  OwnerPeer owner(1);
  corpus::Document doc = MakeDoc(0, {"a", "b", "c", "d", "e"});
  OwnedDocument& owned = owner.AdoptDocument(&doc);
  owned.index_terms = {"a", "b"};
  SpriteConfig config;
  config.terms_per_iteration = 5;
  config.max_index_terms = 3;
  auto update = owner.GrowStatic(owned, config);
  EXPECT_EQ(update.add.size(), 1u);
  EXPECT_EQ(owned.index_terms.size(), 3u);
  // Already at cap: nothing more.
  EXPECT_TRUE(owner.GrowStatic(owned, config).add.empty());
}

}  // namespace
}  // namespace sprite::core
