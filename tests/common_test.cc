// Unit tests for src/common: Status, MD5, SHA-1, RNG, Zipf, string
// utilities, JSON helpers and the histogram.

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/json_util.h"
#include "common/md5.h"
#include "common/rng.h"
#include "common/sha1.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/zipf.h"

namespace sprite {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::InvalidArgument("bad");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInvalidArgument());
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseReturnMacro(int x) {
  SPRITE_RETURN_IF_ERROR(ParsePositive(x).status());
  return Status::OK();
}

TEST(StatusOrTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(UseReturnMacro(3).ok());
  EXPECT_TRUE(UseReturnMacro(-1).IsInvalidArgument());
}

// ------------------------------------------------------------------- MD5

// RFC 1321 appendix A.5 test suite.
TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(Md5Hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5Hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5Hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5Hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5Hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5Hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5Hex("1234567890123456789012345678901234567890123456789012345678"
                   "9012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, QuickBrownFox) {
  EXPECT_EQ(Md5Hex("The quick brown fox jumps over the lazy dog"),
            "9e107d9d372bb6826bd81d3542a419d6");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Md5 md5;
    md5.Update(msg.substr(0, split));
    md5.Update(msg.substr(split));
    EXPECT_EQ(md5.Finalize().ToHex(), Md5Hex(msg)) << "split=" << split;
  }
}

TEST(Md5Test, BlockBoundaryLengths) {
  // Lengths around the 56- and 64-byte padding boundaries are the classic
  // off-by-one trap.
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u, 1000u}) {
    std::string msg(len, 'x');
    Md5 a;
    a.Update(msg);
    // Compare against byte-at-a-time hashing.
    Md5 b;
    for (char c : msg) b.Update(std::string_view(&c, 1));
    EXPECT_EQ(a.Finalize(), b.Finalize()) << "len=" << len;
  }
}

TEST(Md5Test, ResetAllowsReuse) {
  Md5 md5;
  md5.Update("garbage");
  (void)md5.Finalize();
  md5.Reset();
  md5.Update("abc");
  EXPECT_EQ(md5.Finalize().ToHex(), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5Test, Prefix64IsBigEndianOfFirstEightBytes) {
  // d41d8cd98f00b204... -> 0xd41d8cd98f00b204
  EXPECT_EQ(Md5Prefix64(""), 0xd41d8cd98f00b204ULL);
  EXPECT_EQ(Md5Prefix64("abc"), 0x900150983cd24fb0ULL);
}

TEST(Md5Test, DistinctInputsDistinctDigests) {
  std::set<std::string> digests;
  for (int i = 0; i < 1000; ++i) {
    digests.insert(Md5Hex("input" + std::to_string(i)));
  }
  EXPECT_EQ(digests.size(), 1000u);
}

// ------------------------------------------------------------------ SHA-1

TEST(Sha1Test, Fips180Vectors) {
  EXPECT_EQ(Sha1Hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1Hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, QuickBrownFox) {
  EXPECT_EQ(Sha1Hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  const std::string msg(200, 'q');
  Sha1 a;
  a.Update(msg.substr(0, 63));
  a.Update(msg.substr(63));
  EXPECT_EQ(a.Finalize().ToHex(), Sha1Hex(msg));
}

TEST(Sha1Test, MillionAs) {
  Sha1 sha;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) sha.Update(chunk);
  EXPECT_EQ(sha.Finalize().ToHex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

// -------------------------------------------------------------------- RNG

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedDrawRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleWithoutReplacement(20, 10);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (size_t v : sample) EXPECT_LT(v, 20u);
  }
}

TEST(RngTest, SampleFullPopulationIsPermutation) {
  Rng rng(29);
  auto sample = rng.SampleWithoutReplacement(8, 8);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(101);
  Rng child = a.Fork();
  // The fork's outputs must not replay the parent's next outputs.
  EXPECT_NE(child.NextUint64(), a.NextUint64());
}

TEST(RngTest, SplitMix64KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(state);
  uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(state2), first);
  EXPECT_NE(SplitMix64(state2), first);  // second draw differs
}

// -------------------------------------------------------------------- Zipf

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(100, 0.5);
  double total = 0.0;
  for (size_t i = 0; i < 100; ++i) total += z.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotoneNonIncreasing) {
  ZipfSampler z(50, 1.0);
  for (size_t i = 1; i < 50; ++i) EXPECT_LE(z.Pmf(i), z.Pmf(i - 1));
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfSampler z(10, 0.0);
  for (size_t i = 0; i < 10; ++i) EXPECT_NEAR(z.Pmf(i), 0.1, 1e-12);
}

TEST(ZipfTest, SamplesMatchPmf) {
  ZipfSampler z(10, 1.0);
  Rng rng(43);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, z.Pmf(i), 0.01)
        << "rank " << i;
  }
}

TEST(ZipfTest, SingleElement) {
  ZipfSampler z(1, 0.7);
  Rng rng(1);
  EXPECT_EQ(z.Sample(rng), 0u);
  EXPECT_NEAR(z.Pmf(0), 1.0, 1e-12);
}

// The paper's w-zipf stream uses slope 0.5; head mass should dominate the
// tail but not overwhelmingly.
TEST(ZipfTest, HalfSlopeHeadMass) {
  ZipfSampler z(315, 0.5);
  EXPECT_GT(z.Pmf(0), z.Pmf(314) * 10);
  EXPECT_LT(z.Pmf(0), 0.1);
}

// ---------------------------------------------------------------- strings

TEST(StringUtilTest, AsciiLower) {
  EXPECT_EQ(AsciiLower("MiXeD Case-42"), "mixed case-42");
  EXPECT_EQ(AsciiLower(""), "");
}

TEST(StringUtilTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(SplitString("a,b,,c", ","),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("  a b ", " "),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(SplitString("", ",").empty());
  EXPECT_TRUE(SplitString(",,,", ",").empty());
}

TEST(StringUtilTest, SplitMultipleDelims) {
  EXPECT_EQ(SplitString("a,b;c", ",;"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foo", "foobar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("bar", "foobar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(TrimWhitespace("hi"), "hi");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

// -------------------------------------------------------------- histogram

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_NEAR(h.StdDev(), std::sqrt(2.5), 1e-12);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(1.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(9.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Summary(), "count=0");
}

TEST(HistogramTest, PercentileAfterInterleavedAdds) {
  Histogram h;
  for (int i = 100; i >= 1; --i) h.Add(i);
  EXPECT_DOUBLE_EQ(h.Percentile(95), 95.0);
  h.Add(1000.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(2.0);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

TEST(HistogramTest, PercentileEdgeCases) {
  Histogram single;
  single.Add(7.5);
  // Every percentile of a one-sample distribution is that sample.
  EXPECT_DOUBLE_EQ(single.Percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(single.Percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(single.Percentile(95), 7.5);
  EXPECT_DOUBLE_EQ(single.Percentile(100), 7.5);

  Histogram pair;
  pair.Add(10.0);
  pair.Add(20.0);
  EXPECT_DOUBLE_EQ(pair.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(pair.Percentile(100), 20.0);
}

TEST(HistogramTest, SampleCapExactBelowCap) {
  Histogram h;
  h.SetSampleCap(100);
  for (int i = 1; i <= 100; ++i) h.Add(i);
  // At or below the cap nothing is sampled away: all stats are exact.
  EXPECT_EQ(h.retained(), 100u);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(95), 95.0);
  // Sample variance of 1..n is n(n+1)/12.
  EXPECT_NEAR(h.StdDev(), std::sqrt(100.0 * 101.0 / 12.0), 1e-9);
}

TEST(HistogramTest, SampleCapKeepsMomentsExactAboveCap) {
  Histogram capped;
  capped.SetSampleCap(64);
  double sum = 0.0;
  for (int i = 1; i <= 10000; ++i) {
    capped.Add(i);
    sum += i;
  }
  // Retention is bounded; count/sum/mean/min/max stay exact.
  EXPECT_EQ(capped.retained(), 64u);
  EXPECT_EQ(capped.count(), 10000u);
  EXPECT_DOUBLE_EQ(capped.sum(), sum);
  EXPECT_DOUBLE_EQ(capped.Mean(), sum / 10000.0);
  EXPECT_DOUBLE_EQ(capped.min(), 1.0);
  EXPECT_DOUBLE_EQ(capped.max(), 10000.0);
  // Percentiles come from a uniform reservoir: approximate, but within
  // the sample's own range and in the right region for a uniform input.
  const double p50 = capped.Percentile(50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 10000.0);
  EXPECT_NEAR(p50, 5000.0, 2500.0);
}

TEST(HistogramTest, SampleCapIsDeterministic) {
  // The reservoir uses a fixed-seed generator: two identically-fed
  // histograms retain identical samples, so perf reports are reproducible.
  Histogram a, b;
  a.SetSampleCap(32);
  b.SetSampleCap(32);
  for (int i = 0; i < 5000; ++i) {
    a.Add(i * 0.5);
    b.Add(i * 0.5);
  }
  for (double p : {5.0, 25.0, 50.0, 75.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), b.Percentile(p)) << "p" << p;
  }
  EXPECT_DOUBLE_EQ(a.StdDev(), b.StdDev());
}

TEST(HistogramTest, SetSampleCapDownsamplesExistingRetention) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(i);
  EXPECT_EQ(h.retained(), 1000u);
  h.SetSampleCap(50);
  EXPECT_EQ(h.retained(), 50u);
  EXPECT_EQ(h.count(), 1000u);       // exact stats survive the shrink
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // Lifting the cap back to 0 stops future eviction but cannot recover
  // discarded samples.
  h.SetSampleCap(0);
  h.Add(5000.0);
  EXPECT_EQ(h.retained(), 51u);
  EXPECT_EQ(h.count(), 1001u);
}

TEST(HistogramTest, SampleCapClearResets) {
  Histogram h;
  h.SetSampleCap(16);
  for (int i = 0; i < 100; ++i) h.Add(i);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.retained(), 0u);
  EXPECT_EQ(h.sample_cap(), 16u);  // the cap is configuration, not state
  for (int i = 0; i < 100; ++i) h.Add(i);
  EXPECT_EQ(h.retained(), 16u);
  EXPECT_EQ(h.count(), 100u);
}

TEST(HistogramTest, UncappedBehaviorUnchanged) {
  // Default histograms (sim registries) retain everything — the cap is
  // opt-in, so deterministic metrics dumps are unaffected by its existence.
  Histogram h;
  EXPECT_EQ(h.sample_cap(), 0u);
  for (int i = 1; i <= 5000; ++i) h.Add(i);
  EXPECT_EQ(h.retained(), 5000u);
  EXPECT_DOUBLE_EQ(h.Percentile(95), 4750.0);
}

// -------------------------------------------------------------- json util

TEST(JsonUtilTest, EscapeHandlesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\rc\td"), "a\\nb\\rc\\td");
}

TEST(JsonUtilTest, EscapeHandlesControlCharacters) {
  EXPECT_EQ(JsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(JsonEscape(std::string("\x00", 1)), "\\u0000");
  EXPECT_EQ(JsonEscape("\x1f"), "\\u001f");
  // 0x20 (space) and above pass through untouched.
  EXPECT_EQ(JsonEscape(" ~"), " ~");
}

TEST(JsonUtilTest, NumberFormatsFiniteValues) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(2.5), "2.5");
  EXPECT_EQ(JsonNumber(-13.0), "-13");
}

TEST(JsonUtilTest, NumberMapsNonFiniteToNull) {
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity()), "null");
}

}  // namespace
}  // namespace sprite
