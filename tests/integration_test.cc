// Cross-module integration tests: the paper's headline claims on a reduced
// bed (SPRITE vs eSearch vs centralized), query expansion, and end-to-end
// determinism.

#include <gtest/gtest.h>

#include "core/query_expansion.h"
#include "eval/experiment.h"

namespace sprite {
namespace {

using core::SpriteConfig;
using core::SpriteSystem;
using eval::EvalResult;
using eval::ExperimentOptions;
using eval::TestBed;

ExperimentOptions MediumExperiment() {
  // The calibrated generator defaults (see SyntheticCorpusOptions) at a
  // reduced scale: 8 topics x 3 originals, 1200 documents.
  ExperimentOptions o;
  o.corpus.seed = 42;
  o.corpus.num_topics = 8;
  o.corpus.num_base_queries = 24;
  o.corpus.num_docs = 1200;
  o.corpus.query_min_terms = 3;
  o.generator.rank_cutoff = 60;
  return o;
}

SpriteConfig DefaultSprite() {
  SpriteConfig c;
  c.num_peers = 64;
  c.initial_terms = 5;
  c.terms_per_iteration = 5;
  c.max_index_terms = 20;
  return c;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bed_ = new TestBed(TestBed::Build(MediumExperiment()));
  }
  static void TearDownTestSuite() {
    delete bed_;
    bed_ = nullptr;
  }
  static TestBed* bed_;
};

TestBed* IntegrationTest::bed_ = nullptr;

// The paper's headline (Figure 4): with the same number of indexed terms,
// learned selection beats static frequency selection on recall, and SPRITE
// lands reasonably close to the centralized ideal.
TEST_F(IntegrationTest, SpriteOutperformsESearchAtEqualTerms) {
  SpriteSystem sprite(DefaultSprite());
  ASSERT_TRUE(
      eval::TrainSystem(sprite, *bed_, bed_->split().train, 3).ok());
  EvalResult sprite_result =
      eval::EvaluateSystem(sprite, *bed_, bed_->split().test, 20);

  SpriteSystem esearch(core::MakeESearchConfig(DefaultSprite(), 20));
  ASSERT_TRUE(eval::TrainSystem(esearch, *bed_, bed_->split().train, 0).ok());
  EvalResult esearch_result =
      eval::EvaluateSystem(esearch, *bed_, bed_->split().test, 20);

  EXPECT_GT(sprite_result.system.recall, esearch_result.system.recall);
  EXPECT_GE(sprite_result.system.precision, esearch_result.system.precision);
  // "nearly as effective as the centralized system"
  EXPECT_GT(sprite_result.ratio.recall, 0.6);
}

TEST_F(IntegrationTest, MoreLearningIterationsNeverHurtMuch) {
  double prev_recall = -1.0;
  for (size_t iters : {0u, 1u, 3u}) {
    SpriteSystem system(DefaultSprite());
    ASSERT_TRUE(
        eval::TrainSystem(system, *bed_, bed_->split().train, iters).ok());
    EvalResult r = eval::EvaluateSystem(system, *bed_, bed_->split().test, 20);
    EXPECT_GE(r.system.recall, prev_recall - 0.02)
        << "recall collapsed at iterations=" << iters;
    prev_recall = r.system.recall;
  }
}

TEST_F(IntegrationTest, EndToEndDeterminism) {
  auto run = [&]() {
    SpriteSystem system(DefaultSprite());
    EXPECT_TRUE(
        eval::TrainSystem(system, *bed_, bed_->split().train, 2).ok());
    return eval::EvaluateSystem(system, *bed_, bed_->split().test, 20);
  };
  EvalResult a = run();
  EvalResult b = run();
  EXPECT_DOUBLE_EQ(a.system.precision, b.system.precision);
  EXPECT_DOUBLE_EQ(a.system.recall, b.system.recall);
  EXPECT_DOUBLE_EQ(a.centralized.precision, b.centralized.precision);
}

TEST_F(IntegrationTest, RebuildingBedIsDeterministic) {
  TestBed other = TestBed::Build(MediumExperiment());
  ASSERT_EQ(other.workload().queries.size(),
            bed_->workload().queries.size());
  for (size_t i = 0; i < other.workload().queries.size(); ++i) {
    EXPECT_EQ(other.workload().queries[i].terms,
              bed_->workload().queries[i].terms);
  }
  EXPECT_EQ(other.split().train, bed_->split().train);
}

TEST_F(IntegrationTest, QueryExpansionAddsCoOccurringTerms) {
  core::LocalContextExpander expander(bed_->corpus(), 10);
  const corpus::Query& q = bed_->workload().queries[0];
  ir::RankedList initial = bed_->centralized().Search(q, 10);
  ASSERT_FALSE(initial.empty());
  auto extra = expander.ExpansionTerms(q, initial, 5);
  EXPECT_LE(extra.size(), 5u);
  EXPECT_FALSE(extra.empty());
  for (const auto& t : extra) {
    EXPECT_FALSE(q.ContainsTerm(t)) << t;
  }
  corpus::Query expanded = expander.Expand(q, initial, 3);
  EXPECT_EQ(expanded.size(), q.size() + 3);
}

TEST_F(IntegrationTest, ExpandedQueryStillFindsRelevantDocs) {
  core::LocalContextExpander expander(bed_->corpus(), 10);
  const corpus::Query& q = bed_->workload().queries[0];
  const auto& relevant = bed_->workload().judgments.Relevant(q.id);
  ASSERT_FALSE(relevant.empty());

  ir::RankedList initial = bed_->centralized().Search(q, 10);
  corpus::Query expanded = expander.Expand(q, initial, 3);
  ir::RankedList after = bed_->centralized().Search(expanded, 20);
  ir::PrecisionRecall pr = ir::EvaluateTopK(after, 20, relevant);
  EXPECT_GT(pr.recall, 0.0);
}

}  // namespace
}  // namespace sprite
