// Cross-feature tests for the Section-7 extensions and membership
// dynamics: replication under churn, hot-term caches surviving failures,
// join/leave sequences preserving index integrity, and heartbeat repair.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sprite_system.h"
#include "corpus/synthetic.h"

namespace sprite::core {
namespace {

corpus::Query Q(corpus::QueryId id, std::vector<std::string> terms) {
  return corpus::Query{id, std::move(terms)};
}

corpus::SyntheticDataset SmallDataset(uint64_t seed) {
  corpus::SyntheticCorpusOptions o;
  o.seed = seed;
  o.vocabulary_size = 3000;
  o.background_head = 60;
  o.num_topics = 6;
  o.topic_core_size = 60;
  o.query_term_hi = 40;
  o.focus_size = 20;
  o.num_docs = 150;
  o.num_base_queries = 12;
  o.min_doc_length = 40;
  o.max_doc_length = 300;
  return corpus::SyntheticCorpusGenerator(o).Generate();
}

SpriteConfig BaseConfig() {
  SpriteConfig c;
  c.num_peers = 24;
  c.initial_terms = 4;
  c.terms_per_iteration = 4;
  c.max_index_terms = 12;
  return c;
}

// Invariant: every shared document's every index term is present in the
// inverted list of the peer currently responsible for that term.
::testing::AssertionResult IndexIntegrityHolds(const SpriteSystem& system,
                                               const corpus::Corpus& corpus) {
  for (const corpus::Document& doc : corpus.docs()) {
    const auto* terms = system.IndexTermsOf(doc.id);
    if (terms == nullptr) {
      return ::testing::AssertionFailure()
             << "doc " << doc.id << " lost its owner state";
    }
    for (const std::string& term : *terms) {
      auto peer_id = system.ring().ResponsibleNode(
          system.ring().space().KeyForString(term));
      if (!peer_id.ok()) {
        return ::testing::AssertionFailure() << "no responsible peer";
      }
      const IndexingPeer* peer = system.indexing_peer(peer_id.value());
      if (peer == nullptr ||
          !peer->HasPosting(text::TermDict::Global().Intern(term), doc.id)) {
        return ::testing::AssertionFailure()
               << "doc " << doc.id << " term '" << term
               << "' missing at peer " << peer_id.value();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(ExtensionsTest, IntegrityHoldsAfterInitialSharing) {
  corpus::SyntheticDataset ds = SmallDataset(1);
  SpriteSystem system(BaseConfig());
  ASSERT_TRUE(system.ShareCorpus(ds.corpus).ok());
  EXPECT_TRUE(IndexIntegrityHolds(system, ds.corpus));
}

TEST(ExtensionsTest, IntegrityHoldsAfterLearning) {
  corpus::SyntheticDataset ds = SmallDataset(2);
  SpriteSystem system(BaseConfig());
  for (const auto& q : ds.base_queries) system.RecordQuery(q);
  ASSERT_TRUE(system.ShareCorpus(ds.corpus).ok());
  system.RunLearningIteration();
  system.RunLearningIteration();
  EXPECT_TRUE(IndexIntegrityHolds(system, ds.corpus));
}

// Join/leave sequences must never lose index entries: joins hand over key
// arcs, leaves hand everything to successors and re-own documents.
class MembershipChurnSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MembershipChurnSweep, JoinLeaveSequencesPreserveIntegrity) {
  corpus::SyntheticDataset ds = SmallDataset(GetParam());
  SpriteSystem system(BaseConfig());
  for (const auto& q : ds.base_queries) system.RecordQuery(q);
  ASSERT_TRUE(system.ShareCorpus(ds.corpus).ok());
  system.RunLearningIteration();

  Rng rng(GetParam() * 31 + 7);
  int joined = 0;
  for (int step = 0; step < 12; ++step) {
    if (rng.NextBool(0.5)) {
      ASSERT_TRUE(
          system.JoinPeer("churn" + std::to_string(joined++)).ok());
    } else if (system.ring().num_alive() > 4) {
      std::vector<uint64_t> ids = system.ring().AliveIds();
      const uint64_t victim = ids[rng.NextUint64(ids.size())];
      ASSERT_TRUE(system.LeavePeer(victim).ok());
    }
    ASSERT_TRUE(IndexIntegrityHolds(system, ds.corpus))
        << "after step " << step;
  }
  // The system still answers queries afterwards.
  auto result = system.Search(ds.base_queries[0], 10, false);
  EXPECT_TRUE(result.ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MembershipChurnSweep,
                         ::testing::Values(3, 4, 5, 6, 7, 8));

TEST(ExtensionsTest, HeartbeatsRepairAfterAbruptFailure) {
  corpus::SyntheticDataset ds = SmallDataset(9);
  SpriteSystem system(BaseConfig());
  ASSERT_TRUE(system.ShareCorpus(ds.corpus).ok());

  // Abruptly fail a few non-owner peers, stabilize, heartbeat-repair.
  Rng rng(99);
  std::vector<uint64_t> ids = system.ring().AliveIds();
  rng.Shuffle(ids);
  size_t failed = 0;
  for (uint64_t id : ids) {
    if (failed >= 4) break;
    const OwnerPeer* owner = system.owner_peer(id);
    if (owner != nullptr && owner->num_documents() > 0) continue;
    ASSERT_TRUE(system.FailPeer(id).ok());
    ++failed;
  }
  ASSERT_EQ(failed, 4u);
  system.StabilizeNetwork(3);
  system.RunHeartbeats();
  EXPECT_TRUE(IndexIntegrityHolds(system, ds.corpus));
}

TEST(ExtensionsTest, HotCacheServesWhenHotPeerDies) {
  SpriteConfig config;
  config.num_peers = 24;
  config.initial_terms = 2;
  config.max_index_terms = 4;
  config.use_hot_term_cache = true;
  SpriteSystem system(config);

  corpus::Corpus corpus;
  corpus.AddDocument(text::TermVector::FromTokens(
      {"storage", "storage", "replica", "replica"}));
  ASSERT_TRUE(system.ShareCorpus(corpus).ok());
  for (corpus::QueryId i = 0; i < 5; ++i) {
    system.RecordQuery(Q(i, {"storage", "replica"}));
  }
  ASSERT_GT(system.RunHotTermCaching(2), 0u);

  // Kill the peer responsible for "storage"; the co-term peer's cached
  // copy keeps the pair query answerable even without replication.
  const uint64_t key = system.ring().space().KeyForString("storage");
  ASSERT_TRUE(system.FailPeer(system.ring().ResponsibleNode(key).value()).ok());
  system.StabilizeNetwork(2);

  auto result = system.Search(Q(10, {"replica", "storage"}), 5, false);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  EXPECT_EQ(result->front().doc, 0u);
}

TEST(ExtensionsTest, ReplicationAfterJoinStillConsistent) {
  corpus::SyntheticDataset ds = SmallDataset(11);
  SpriteConfig config = BaseConfig();
  config.replication_factor = 2;
  SpriteSystem system(config);
  ASSERT_TRUE(system.ShareCorpus(ds.corpus).ok());
  system.ReplicateIndexes();
  ASSERT_TRUE(system.JoinPeer("newbie").ok());
  system.ReplicateIndexes();  // refresh replicas for the new arcs
  EXPECT_TRUE(IndexIntegrityHolds(system, ds.corpus));
}

TEST(ExtensionsTest, JoinAfterLeaveRoundTrips) {
  corpus::SyntheticDataset ds = SmallDataset(13);
  SpriteSystem system(BaseConfig());
  ASSERT_TRUE(system.ShareCorpus(ds.corpus).ok());
  const size_t alive = system.ring().num_alive();
  std::vector<uint64_t> ids = system.ring().AliveIds();
  ASSERT_TRUE(system.LeavePeer(ids[3]).ok());
  ASSERT_TRUE(system.JoinPeer("replacement").ok());
  EXPECT_EQ(system.ring().num_alive(), alive);
  EXPECT_TRUE(IndexIntegrityHolds(system, ds.corpus));
}

TEST(ExtensionsTest, RebalanceRangeSplitsTheHottestArc) {
  corpus::SyntheticDataset ds = SmallDataset(19);
  SpriteSystem system(BaseConfig());
  ASSERT_TRUE(system.ShareCorpus(ds.corpus).ok());

  auto max_postings = [&]() {
    size_t max_load = 0;
    for (uint64_t id : system.ring().AliveIds()) {
      const IndexingPeer* peer = system.indexing_peer(id);
      if (peer != nullptr) max_load = std::max(max_load, peer->num_postings());
    }
    return max_load;
  };

  const size_t before = max_postings();
  ASSERT_GT(before, 0u);
  Status s = system.RebalanceRange();
  ASSERT_TRUE(s.ok()) << s.ToString();
  // The overloaded peer lost part of its arc; integrity is preserved.
  EXPECT_LT(max_postings(), before);
  EXPECT_TRUE(IndexIntegrityHolds(system, ds.corpus));
  // Repeated rebalancing keeps converging (or reports balance reached).
  for (int i = 0; i < 5; ++i) {
    Status again = system.RebalanceRange();
    if (!again.ok()) {
      EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
      break;
    }
    EXPECT_TRUE(IndexIntegrityHolds(system, ds.corpus));
  }
}

TEST(ExtensionsTest, RebalanceRangeNeedsThreePeers) {
  SpriteConfig config;
  config.num_peers = 2;
  SpriteSystem system(config);
  EXPECT_EQ(system.RebalanceRange().code(),
            StatusCode::kFailedPrecondition);
}

// The query caches must not leak results across key spaces: an expanded
// search's fused answer never lands under the unexpanded key, and a warm
// plain-result cache never short-circuits the expansion pipeline into
// returning something an uncached system would not.
TEST(ExtensionsTest, ExpansionDoesNotPoisonTheResultCache) {
  corpus::SyntheticDataset ds = SmallDataset(23);
  SpriteConfig cached_config = BaseConfig();
  cached_config.enable_result_cache = true;
  cached_config.enable_posting_cache = true;
  SpriteSystem cached(cached_config);
  SpriteSystem plain(BaseConfig());
  ASSERT_TRUE(cached.ShareCorpus(ds.corpus).ok());
  ASSERT_TRUE(plain.ShareCorpus(ds.corpus).ok());

  const corpus::Query& q = ds.base_queries[0];
  auto baseline = cached.Search(q, 20, false);
  ASSERT_TRUE(baseline.ok());

  // Interleave plain and expanded issuances at many querying peers (the
  // caches are per peer). The expanded pipeline internally runs plain
  // searches over the same terms, so its issuances both read and fill the
  // shared tiers — and must not corrupt them.
  for (int i = 0; i < 24; ++i) {
    auto expanded_cached = cached.SearchWithExpansion(q, 20, 3, 5);
    auto expanded_plain = plain.SearchWithExpansion(q, 20, 3, 5);
    ASSERT_TRUE(expanded_cached.ok());
    ASSERT_TRUE(expanded_plain.ok());
    // Vice versa: warm caches must not change what expansion returns.
    EXPECT_EQ(expanded_cached.value(), expanded_plain.value());

    auto repeat = cached.Search(q, 20, false);
    ASSERT_TRUE(repeat.ok());
    // The unexpanded key still maps to the plain answer, byte for byte.
    EXPECT_EQ(repeat.value(), baseline.value());
  }
  EXPECT_GT(cached.query_cache()
                .stats(cache::CacheTier::kResult)
                .hits,
            0u);
}

TEST(ExtensionsTest, ExpansionImprovesOrPreservesRecallOnSyntheticBed) {
  corpus::SyntheticDataset ds = SmallDataset(17);
  SpriteSystem system(BaseConfig());
  for (const auto& q : ds.base_queries) system.RecordQuery(q);
  ASSERT_TRUE(system.ShareCorpus(ds.corpus).ok());
  system.RunLearningIteration();

  size_t plain_hits = 0, expanded_hits = 0;
  for (const auto& q : ds.base_queries) {
    const auto& relevant = ds.judgments.Relevant(q.id);
    auto plain = system.Search(q, 20, false);
    ASSERT_TRUE(plain.ok());
    for (const auto& s : *plain) plain_hits += relevant.count(s.doc);
    auto expanded = system.SearchWithExpansion(q, 20, 3, 5);
    ASSERT_TRUE(expanded.ok());
    for (const auto& s : *expanded) expanded_hits += relevant.count(s.doc);
  }
  // Expansion must not be catastrophic; typically it helps recall a bit.
  EXPECT_GE(expanded_hits * 10, plain_hits * 8);
}

}  // namespace
}  // namespace sprite::core
