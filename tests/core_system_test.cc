// End-to-end tests for SpriteSystem: sharing, distributed search, learning
// iterations, the eSearch configuration, replication/failure handling, and
// the Section-7 overload advisories.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sprite_system.h"
#include "corpus/corpus.h"

namespace sprite::core {
namespace {

text::TermVector TV(const std::vector<std::string>& tokens) {
  return text::TermVector::FromTokens(tokens);
}

corpus::Query Q(corpus::QueryId id, std::vector<std::string> terms) {
  return corpus::Query{id, std::move(terms)};
}

SpriteConfig SmallConfig() {
  SpriteConfig c;
  c.num_peers = 16;
  c.initial_terms = 2;
  c.terms_per_iteration = 2;
  c.max_index_terms = 6;
  return c;
}

// A small corpus with clearly separated vocabulary per document.
class SpriteSystemTest : public ::testing::Test {
 protected:
  SpriteSystemTest() {
    // doc0: about cats; frequent terms cat, feline; rare term "whiskers".
    corpus_.AddDocument(TV({"cat", "cat", "cat", "feline", "feline",
                            "whisker", "purr"}));
    // doc1: about dogs.
    corpus_.AddDocument(TV({"dog", "dog", "dog", "canine", "canine",
                            "leash", "bark"}));
    // doc2: mixed pets.
    corpus_.AddDocument(TV({"pet", "pet", "cat", "dog", "food"}));
  }

  corpus::Corpus corpus_;
};

TEST_F(SpriteSystemTest, ShareAssignsInitialTopFrequentTerms) {
  SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  const auto* terms = system.IndexTermsOf(0);
  ASSERT_NE(terms, nullptr);
  EXPECT_EQ(*terms, (std::vector<std::string>{"cat", "feline"}));
  EXPECT_EQ(system.TotalIndexedTerms(), 6u);  // 2 terms x 3 docs
}

TEST_F(SpriteSystemTest, ShareRejectsDuplicatesAndEmpty) {
  SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareDocument(corpus_.doc(0)).ok());
  EXPECT_EQ(system.ShareDocument(corpus_.doc(0)).code(),
            StatusCode::kAlreadyExists);
  corpus::Document empty;
  empty.id = 99;
  EXPECT_TRUE(system.ShareDocument(empty).IsInvalidArgument());
}

TEST_F(SpriteSystemTest, SearchFindsDocsByIndexedTerms) {
  SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  auto result = system.Search(Q(0, {"cat"}), 10);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  EXPECT_EQ(result->front().doc, 0u);  // doc0 is the cat document
}

TEST_F(SpriteSystemTest, SearchMissesUnindexedTerms) {
  SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  // "whisker" occurs once in doc0 but only the top-2 terms are indexed.
  auto result = system.Search(Q(0, {"whisker"}), 10);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(SpriteSystemTest, EmptyQueryRejected) {
  SpriteSystem system(SmallConfig());
  EXPECT_TRUE(system.Search(Q(0, {}), 10).status().IsInvalidArgument());
}

TEST_F(SpriteSystemTest, LearningIndexesQueriedTerms) {
  SpriteSystem system(SmallConfig());
  // Users look for doc0 with queries that combine an indexed term ("cat")
  // with terms the initial frequency-based index missed. Learning can only
  // observe queries that touch a currently indexed term — exactly the
  // Figure 1 scenario, where queries on a and b teach the owner d and e.
  system.RecordQuery(Q(1, {"cat", "whisker", "purr"}));
  system.RecordQuery(Q(2, {"cat", "whisker", "purr"}));
  system.RecordQuery(Q(3, {"cat", "whisker"}));
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());

  auto before = system.Search(Q(10, {"whisker"}), 10, /*record=*/false);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->empty());

  system.RunLearningIteration();

  const auto* terms = system.IndexTermsOf(0);
  ASSERT_NE(terms, nullptr);
  EXPECT_TRUE(std::find(terms->begin(), terms->end(), "whisker") !=
              terms->end())
      << "whisker should have been learned";

  auto after = system.Search(Q(11, {"whisker"}), 10, /*record=*/false);
  ASSERT_TRUE(after.ok());
  ASSERT_FALSE(after->empty());
  EXPECT_EQ(after->front().doc, 0u);
}

TEST_F(SpriteSystemTest, LearningRespectsTermCap) {
  SpriteConfig config = SmallConfig();
  config.max_index_terms = 3;
  SpriteSystem system(config);
  for (corpus::QueryId i = 0; i < 8; ++i) {
    system.RecordQuery(Q(i, {"cat", "whisker", "purr"}));
  }
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  system.RunLearningIteration();
  system.RunLearningIteration();
  const auto* terms = system.IndexTermsOf(0);
  ASSERT_NE(terms, nullptr);
  EXPECT_EQ(terms->size(), 3u);  // grew from 2 to the cap, not beyond
  // The learned terms crowd in: whisker and purr are both present only if
  // one of the initial terms was evicted; the cap must hold regardless.
  EXPECT_TRUE(std::find(terms->begin(), terms->end(), "whisker") !=
              terms->end());
}

TEST_F(SpriteSystemTest, WithdrawnTermsLeaveTheDistributedIndex) {
  SpriteConfig config = SmallConfig();
  config.initial_terms = 2;
  config.terms_per_iteration = 2;
  config.max_index_terms = 2;  // any addition forces an eviction
  SpriteSystem system(config);
  for (corpus::QueryId i = 0; i < 6; ++i) {
    system.RecordQuery(Q(i, {"cat", "whisker", "purr"}));
  }
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  system.RunLearningIteration();

  const auto* terms = system.IndexTermsOf(0);
  ASSERT_NE(terms, nullptr);
  EXPECT_EQ(terms->size(), 2u);
  // The evicted initial terms must no longer be searchable for doc0.
  for (const std::string gone : {"cat", "feline"}) {
    if (std::find(terms->begin(), terms->end(), gone) != terms->end()) {
      continue;  // survived the cap
    }
    auto result = system.Search(Q(50, {gone}), 10, /*record=*/false);
    ASSERT_TRUE(result.ok());
    for (const auto& scored : *result) EXPECT_NE(scored.doc, 0u) << gone;
  }
}

TEST_F(SpriteSystemTest, ESearchConfigGrowsStatically) {
  SpriteConfig base = SmallConfig();
  base.terms_per_iteration = 2;
  SpriteConfig es = MakeESearchConfig(base, 2);
  es.max_index_terms = 4;  // allow growth for this test
  SpriteSystem system(es);
  // Queries must have no effect on term selection.
  system.RecordQuery(Q(1, {"whisker", "purr"}));
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  system.RunLearningIteration();
  const auto* terms = system.IndexTermsOf(0);
  ASSERT_NE(terms, nullptr);
  // Growth is by frequency: cat(3), feline(2) initial; then purr/whisker
  // tie at 1 with lexicographic order purr < whisker.
  EXPECT_EQ(*terms,
            (std::vector<std::string>{"cat", "feline", "purr", "whisker"}));
}

TEST_F(SpriteSystemTest, MakeESearchConfigShape) {
  SpriteConfig es = MakeESearchConfig(SpriteConfig{}, 20);
  EXPECT_EQ(es.selection, TermSelectionPolicy::kStaticFrequency);
  EXPECT_EQ(es.initial_terms, 20u);
  EXPECT_EQ(es.max_index_terms, 20u);
}

TEST_F(SpriteSystemTest, NetworkTrafficIsAccounted) {
  SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  const auto& stats = system.network_stats();
  EXPECT_EQ(stats.MessagesOf(p2p::MessageType::kPublishTerm), 6u);
  EXPECT_GT(stats.TotalBytes(), 0u);

  system.ClearNetworkStats();
  (void)system.Search(Q(0, {"cat", "dog"}), 5, /*record=*/false);
  EXPECT_EQ(system.network_stats().MessagesOf(p2p::MessageType::kQueryRequest),
            2u);
  EXPECT_EQ(
      system.network_stats().MessagesOf(p2p::MessageType::kQueryResponse),
      2u);
}

TEST_F(SpriteSystemTest, SearchSurvivesPeerFailureBySkippingTerm) {
  SpriteConfig config = SmallConfig();
  config.skip_unreachable_terms = true;
  SpriteSystem system(config);
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());

  // Fail the peer holding "cat"'s inverted list; the posting is lost but a
  // multi-term query must still answer from the surviving terms.
  const uint64_t key = system.ring().space().KeyForString("cat");
  const uint64_t victim = system.ring().ResponsibleNode(key).value();
  ASSERT_TRUE(system.FailPeer(victim).ok());
  system.StabilizeNetwork(2);

  auto result = system.Search(Q(0, {"cat", "dog"}), 10, /*record=*/false);
  ASSERT_TRUE(result.ok());
  bool found_dog_doc = false;
  for (const auto& scored : *result) found_dog_doc |= (scored.doc == 1);
  EXPECT_TRUE(found_dog_doc);
}

TEST_F(SpriteSystemTest, ReplicationServesIndexAfterFailure) {
  SpriteConfig config = SmallConfig();
  config.replication_factor = 2;
  SpriteSystem system(config);
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  system.ReplicateIndexes();
  EXPECT_GT(system.network_stats().MessagesOf(p2p::MessageType::kReplicate),
            0u);

  const uint64_t key = system.ring().space().KeyForString("cat");
  const uint64_t victim = system.ring().ResponsibleNode(key).value();
  ASSERT_TRUE(system.FailPeer(victim).ok());
  system.StabilizeNetwork(2);

  // The successor now owns the key and serves its replica.
  auto result = system.Search(Q(0, {"cat"}), 10, /*record=*/false);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  EXPECT_EQ(result->front().doc, 0u);
}

TEST_F(SpriteSystemTest, OverloadAdvisoryReplacesPopularTerm) {
  // Build a corpus where "common" appears in every document, making its
  // indexing peer overloaded by construction.
  corpus::Corpus corpus;
  for (int i = 0; i < 6; ++i) {
    corpus.AddDocument(TV({"common", "common", "common",
                           "rare" + std::to_string(i),
                           "rare" + std::to_string(i)}));
  }
  SpriteConfig config = SmallConfig();
  config.initial_terms = 1;  // everyone initially indexes only "common"
  SpriteSystem system(config);
  ASSERT_TRUE(system.ShareCorpus(corpus).ok());

  const size_t replaced = system.RunOverloadAdvisories(/*threshold=*/3);
  EXPECT_EQ(replaced, 6u);
  // Every document now indexes its rare term instead.
  for (corpus::DocId d = 0; d < 6; ++d) {
    const auto* terms = system.IndexTermsOf(d);
    ASSERT_NE(terms, nullptr);
    EXPECT_EQ(terms->size(), 1u);
    EXPECT_NE((*terms)[0], "common") << "doc " << d;
  }
  EXPECT_GT(system.network_stats().MessagesOf(p2p::MessageType::kAdvisory),
            0u);
}

TEST_F(SpriteSystemTest, RecordQueryPopulatesHistories) {
  SpriteSystem system(SmallConfig());
  system.RecordQuery(Q(1, {"alpha", "beta"}));
  // Each term's responsible peer holds one record.
  size_t records = 0;
  for (const std::string term : {"alpha", "beta"}) {
    const uint64_t key = system.ring().space().KeyForString(term);
    const uint64_t peer = system.ring().ResponsibleNode(key).value();
    const IndexingPeer* ip = system.indexing_peer(peer);
    ASSERT_NE(ip, nullptr);
    for (const auto& rec : ip->history()) {
      if (rec.id == 1) ++records;
    }
  }
  EXPECT_EQ(records, 2u);
  EXPECT_EQ(system.current_seq(), 1u);
}

TEST_F(SpriteSystemTest, UnshareRemovesDocumentFromIndex) {
  SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  ASSERT_FALSE(system.Search(Q(1, {"cat"}), 10, false)->empty());

  ASSERT_TRUE(system.UnshareDocument(0).ok());
  auto result = system.Search(Q(2, {"cat"}), 10, false);
  ASSERT_TRUE(result.ok());
  for (const auto& scored : *result) EXPECT_NE(scored.doc, 0u);
  EXPECT_EQ(system.IndexTermsOf(0), nullptr);
  // Unsharing twice fails cleanly.
  EXPECT_TRUE(system.UnshareDocument(0).IsNotFound());
}

TEST_F(SpriteSystemTest, JoinPeerTakesOverItsKeyArc) {
  SpriteSystem system(SmallConfig());
  system.RecordQuery(Q(1, {"cat", "whisker"}));
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  const size_t alive_before = system.ring().num_alive();

  // Join enough peers that some key arcs are certain to move.
  std::vector<PeerId> newcomers;
  for (int i = 0; i < 8; ++i) {
    auto id = system.JoinPeer("latecomer" + std::to_string(i));
    ASSERT_TRUE(id.ok());
    newcomers.push_back(id.value());
  }
  EXPECT_EQ(system.ring().num_alive(), alive_before + 8);

  // Every shared term must still be owned by the oracle-responsible peer
  // and searchable.
  for (const std::string term : {"cat", "dog", "pet", "feline", "canine"}) {
    const uint64_t key = system.ring().space().KeyForString(term);
    const PeerId responsible = system.ring().ResponsibleNode(key).value();
    const IndexingPeer* peer = system.indexing_peer(responsible);
    ASSERT_NE(peer, nullptr);
    EXPECT_GT(peer->IndexedDocFreq(text::TermDict::Global().Intern(term)), 0u)
        << term;
  }
  auto result = system.Search(Q(2, {"cat"}), 10, false);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  EXPECT_EQ(result->front().doc, 0u);
  EXPECT_GT(system.network_stats().MessagesOf(p2p::MessageType::kKeyTransfer),
            0u);
}

TEST_F(SpriteSystemTest, JoinPeerTransfersMatchingHistory) {
  SpriteSystem system(SmallConfig());
  for (corpus::QueryId i = 0; i < 4; ++i) {
    system.RecordQuery(Q(i, {"cat", "whisker", "purr"}));
  }
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(system.JoinPeer("nh" + std::to_string(i)).ok());
  }
  // Learning still works after the arcs moved: the histories followed the
  // responsibility transfer.
  system.RunLearningIteration();
  const auto* terms = system.IndexTermsOf(0);
  ASSERT_NE(terms, nullptr);
  EXPECT_TRUE(std::find(terms->begin(), terms->end(), "whisker") !=
              terms->end());
}

TEST_F(SpriteSystemTest, HeartbeatsProbeEveryIndexedTerm) {
  SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  const size_t probes = system.RunHeartbeats();
  EXPECT_EQ(probes, system.TotalIndexedTerms());
  EXPECT_EQ(system.network_stats().MessagesOf(p2p::MessageType::kHeartbeat),
            probes);
}

TEST_F(SpriteSystemTest, HeartbeatsRepublishLostPostings) {
  SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());

  // Fail the peer holding "cat" without replication: the posting is lost.
  const uint64_t key = system.ring().space().KeyForString("cat");
  const PeerId victim = system.ring().ResponsibleNode(key).value();
  ASSERT_TRUE(system.FailPeer(victim).ok());
  system.StabilizeNetwork(2);
  ASSERT_TRUE(system.Search(Q(1, {"cat"}), 10, false)->empty());

  // The owner's next liveness round notices and re-publishes.
  system.RunHeartbeats();
  auto result = system.Search(Q(2, {"cat"}), 10, false);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  EXPECT_EQ(result->front().doc, 0u);
}

TEST_F(SpriteSystemTest, HotTermCachingServesFromCoTermPeer) {
  SpriteConfig config = SmallConfig();
  config.use_hot_term_cache = true;
  SpriteSystem system(config);
  // "cat dog" is the hot query pattern.
  for (corpus::QueryId i = 0; i < 5; ++i) {
    system.RecordQuery(Q(i, {"cat", "dog"}));
  }
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  const size_t placements = system.RunHotTermCaching(2);
  EXPECT_GT(placements, 0u);

  // With both hot terms cached at each other's peers, the two-term query
  // needs only one QueryRequest instead of two.
  system.ClearNetworkStats();
  auto result = system.Search(Q(10, {"cat", "dog"}), 10, false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(
      system.network_stats().MessagesOf(p2p::MessageType::kQueryRequest), 1u);
  // Results are the same as without the cache.
  SpriteConfig plain_config = SmallConfig();
  SpriteSystem plain(plain_config);
  ASSERT_TRUE(plain.ShareCorpus(corpus_).ok());
  auto expected = plain.Search(Q(10, {"cat", "dog"}), 10, false);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(result->size(), expected->size());
  for (size_t i = 0; i < result->size(); ++i) {
    EXPECT_EQ((*result)[i].doc, (*expected)[i].doc);
  }
}

TEST_F(SpriteSystemTest, HotTermCacheDisabledByDefault) {
  SpriteSystem system(SmallConfig());
  for (corpus::QueryId i = 0; i < 5; ++i) {
    system.RecordQuery(Q(i, {"cat", "dog"}));
  }
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  system.RunHotTermCaching(2);
  system.ClearNetworkStats();
  (void)system.Search(Q(10, {"cat", "dog"}), 10, false);
  // Without the config flag the caches are ignored.
  EXPECT_EQ(
      system.network_stats().MessagesOf(p2p::MessageType::kQueryRequest), 2u);
}

TEST_F(SpriteSystemTest, SearchWithExpansionFindsCoOccurringDocs) {
  SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  // "cat" retrieves doc0; its content co-occurs with "feline", which also
  // matches doc0's index. Expansion must not lose the original results.
  auto plain = system.Search(Q(1, {"cat"}), 10, false);
  auto expanded = system.SearchWithExpansion(Q(1, {"cat"}), 10, 2, 2);
  ASSERT_TRUE(expanded.ok());
  ASSERT_FALSE(expanded->empty());
  EXPECT_EQ(expanded->front().doc, plain->front().doc);
}

TEST_F(SpriteSystemTest, SearchWithExpansionZeroExtraEqualsPlain) {
  SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  auto plain = system.Search(Q(1, {"cat", "dog"}), 5, false);
  auto expanded = system.SearchWithExpansion(Q(1, {"cat", "dog"}), 5, 0);
  ASSERT_TRUE(expanded.ok());
  ASSERT_EQ(expanded->size(), plain->size());
  for (size_t i = 0; i < plain->size(); ++i) {
    EXPECT_EQ((*expanded)[i].doc, (*plain)[i].doc);
  }
}

TEST_F(SpriteSystemTest, UpdateDocumentRefreshesPostings) {
  SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());  // doc0 indexes cat,feline

  // New version of doc0: "feline" is gone, "cat" became rarer.
  corpus::Document v2;
  v2.id = 0;
  v2.terms = TV({"cat", "tiger", "tiger", "tiger"});
  ASSERT_TRUE(system.UpdateDocument(v2).ok());

  const auto* terms = system.IndexTermsOf(0);
  ASSERT_NE(terms, nullptr);
  EXPECT_EQ(*terms, (std::vector<std::string>{"cat"}));  // feline withdrawn

  // "feline" no longer finds doc0; "cat" does, with updated metadata.
  auto feline = system.Search(Q(1, {"feline"}), 10, false);
  ASSERT_TRUE(feline.ok());
  for (const auto& scored : *feline) EXPECT_NE(scored.doc, 0u);
  auto cat = system.Search(Q(2, {"cat"}), 10, false);
  ASSERT_TRUE(cat.ok());
  bool found = false;
  for (const auto& scored : *cat) found |= (scored.doc == 0);
  EXPECT_TRUE(found);
}

TEST_F(SpriteSystemTest, UpdateUnknownOrEmptyDocumentRejected) {
  SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  corpus::Document unknown;
  unknown.id = 77;
  unknown.terms = TV({"x"});
  EXPECT_TRUE(system.UpdateDocument(unknown).IsNotFound());
  corpus::Document empty;
  empty.id = 0;
  EXPECT_TRUE(system.UpdateDocument(empty).IsInvalidArgument());
}

TEST_F(SpriteSystemTest, LeavePeerMigratesStateAndDocuments) {
  SpriteSystem system(SmallConfig());
  system.RecordQuery(Q(1, {"cat", "whisker"}));
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());

  // Drain the peer that owns doc0 AND the peer indexing "cat" (possibly
  // the same); everything must stay searchable.
  const PeerId doc_owner = system.OwnerOf(0);
  ASSERT_TRUE(system.LeavePeer(doc_owner).ok());
  const uint64_t key = system.ring().space().KeyForString("cat");
  const PeerId cat_peer = system.ring().ResponsibleNode(key).value();
  if (system.ring().node(cat_peer) != nullptr &&
      system.ring().node(cat_peer)->alive) {
    ASSERT_TRUE(system.LeavePeer(cat_peer).ok());
  }

  EXPECT_NE(system.OwnerOf(0), doc_owner);
  auto result = system.Search(Q(2, {"cat"}), 10, false);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  EXPECT_EQ(result->front().doc, 0u);
  // Learning still has the migrated history available.
  system.RunLearningIteration();
  const auto* terms = system.IndexTermsOf(0);
  ASSERT_NE(terms, nullptr);
  EXPECT_TRUE(std::find(terms->begin(), terms->end(), "whisker") !=
              terms->end());
}

TEST_F(SpriteSystemTest, LeavePeerRejectsUnknownAndLast) {
  SpriteConfig config = SmallConfig();
  config.num_peers = 1;
  SpriteSystem solo(config);
  const PeerId only = solo.ring().AliveIds()[0];
  EXPECT_TRUE(solo.LeavePeer(only).code() ==
              StatusCode::kFailedPrecondition);
  EXPECT_TRUE(solo.LeavePeer(0xdeadbeef).IsNotFound());
}

TEST_F(SpriteSystemTest, IntrospectionOfUnknownDocIsNull) {
  SpriteSystem system(SmallConfig());
  EXPECT_EQ(system.IndexTermsOf(12345), nullptr);
  EXPECT_EQ(system.OwnerOf(12345), 0u);
}

// Regression: a peer responsible for several of a query's terms must store
// the issuance once, not once per term — with a single peer, a two-term
// query burns exactly one slot of the bounded history.
TEST_F(SpriteSystemTest, RecordQueryStoresOnceAtMultiTermPeer) {
  SpriteConfig config = SmallConfig();
  config.num_peers = 1;
  SpriteSystem system(config);
  system.RecordQuery(Q(1, {"cat", "dog"}));

  const PeerId only = system.ring().AliveIds().front();
  const IndexingPeer* ip = system.indexing_peer(only);
  ASSERT_NE(ip, nullptr);
  EXPECT_EQ(ip->history().size(), 1u);

  // The piggybacked recording of Search() dedups the same way.
  ASSERT_TRUE(system.Search(Q(2, {"cat", "dog"}), 10).ok());
  EXPECT_EQ(ip->history().size(), 2u);
}

// Regression: recording a searched query must ride the search's own term
// requests instead of re-running one Chord lookup per term up front.
TEST_F(SpriteSystemTest, SearchRecordingAddsNoExtraLookups) {
  SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());

  system.mutable_ring().ClearStats();
  ASSERT_TRUE(system.Search(Q(1, {"cat", "dog"}), 10, /*record=*/true).ok());
  // One lookup per distinct term; pre-fix this was two (record + fetch).
  EXPECT_EQ(system.ring().stats().lookups, 2u);

  // The record still reaches the contacted peers' histories.
  size_t records = 0;
  for (PeerId id : system.ring().AliveIds()) {
    for (const auto& rec : system.indexing_peer(id)->history()) {
      if (rec.id == 1) ++records;
    }
  }
  EXPECT_GE(records, 1u);
}

// Regression: when an owner's polls cannot reach the indexing peers (here:
// its successor — its only routing exit with a length-1 successor list —
// has failed), the poll cursors must not advance past the unpulled
// queries; after the ring heals, the next iteration must still learn from
// them.
TEST_F(SpriteSystemTest, FailedPollsDoNotAdvanceCursors) {
  SpriteConfig config = SmallConfig();
  config.successor_list_size = 1;
  SpriteSystem system(config);
  system.RecordQuery(Q(1, {"cat", "whisker"}));
  system.RecordQuery(Q(2, {"cat", "whisker"}));
  system.RecordQuery(Q(3, {"cat", "whisker"}));
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());

  const PeerId owner = system.OwnerOf(0);
  const std::vector<PeerId> succ = system.ring().SuccessorsOf(owner, 1);
  ASSERT_EQ(succ.size(), 1u);
  const PeerId victim = succ[0];
  ASSERT_NE(victim, owner);
  // The victim must not hold doc0's polled histories, or healing could not
  // recover them (deterministic ids keep this stable).
  for (const std::string term : {"cat", "feline"}) {
    const uint64_t key = system.ring().space().KeyForString(term);
    ASSERT_NE(system.ring().ResponsibleNode(key).value(), victim);
  }

  // With the successor (and the whole length-1 successor list) dead and no
  // stabilization yet, every lookup from the owner fails: the learning
  // poll for doc0 reaches nobody.
  ASSERT_TRUE(system.FailPeer(victim).ok());
  system.RunLearningIteration();

  const OwnedDocument* owned = system.owner_peer(owner)->document(0);
  ASSERT_NE(owned, nullptr);
  for (const auto& [term, cursor] : owned->poll_cursor) {
    EXPECT_EQ(cursor, 0u) << "cursor for '" << term
                          << "' advanced past unpulled queries";
  }
  const auto* terms_after_outage = system.IndexTermsOf(0);
  ASSERT_NE(terms_after_outage, nullptr);
  EXPECT_TRUE(std::find(terms_after_outage->begin(),
                        terms_after_outage->end(),
                        "whisker") == terms_after_outage->end());

  // Heal the ring; the next poll pulls the queries that were cached all
  // along and learns "whisker". Pre-fix the advanced cursors filtered them
  // out as already-seen and the term was never learned.
  system.StabilizeNetwork(16);
  system.RunLearningIteration();
  const auto* terms = system.IndexTermsOf(0);
  ASSERT_NE(terms, nullptr);
  EXPECT_TRUE(std::find(terms->begin(), terms->end(), "whisker") !=
              terms->end())
      << "queries cached during the outage were lost to stale cursors";
}

// Regression: withdrawing a document must also scrub it from the serving
// peer's replica store, or the Postings() fallback resurrects it after the
// primary list empties.
TEST_F(SpriteSystemTest, WithdrawnDocDoesNotResurfaceFromReplica) {
  SpriteConfig config = SmallConfig();
  config.replication_factor = 2;
  SpriteSystem system(config);
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  system.ReplicateIndexes();

  // Fail the peer serving "feline" (indexed for doc0 only); the arc moves
  // to a successor that holds a stale replica of the list, and a heartbeat
  // republishes the primary posting there.
  const uint64_t key = system.ring().space().KeyForString("feline");
  const PeerId serving = system.ring().ResponsibleNode(key).value();
  ASSERT_TRUE(system.FailPeer(serving).ok());
  system.StabilizeNetwork(8);
  system.RunHeartbeats();

  auto before = system.Search(Q(1, {"feline"}), 10, /*record=*/false);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->empty());  // sanity: doc0 is findable again

  ASSERT_TRUE(system.UnshareDocument(0).ok());
  auto after = system.Search(Q(2, {"feline"}), 10, /*record=*/false);
  ASSERT_TRUE(after.ok());
  for (const auto& scored : *after) {
    EXPECT_NE(scored.doc, 0u)
        << "withdrawn document served from a stale replica";
  }
}

}  // namespace
}  // namespace sprite::core
