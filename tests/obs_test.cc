// Tests for the observability subsystem: the metrics registry (counters,
// gauges, histograms, labels), the JSON snapshot export the benches write,
// the simulated-latency model, and the SpriteSystem integration that feeds
// per-phase metrics from the live system.

#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/sprite_system.h"
#include "corpus/corpus.h"
#include "ir/centralized_index.h"
#include "obs/explain.h"
#include "obs/latency_model.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace sprite::obs {
namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter("requests"), 0u);
  reg.Add("requests");
  reg.Add("requests");
  reg.Add("requests", 5);
  EXPECT_EQ(reg.counter("requests"), 7u);
  EXPECT_EQ(reg.num_counters(), 1u);
}

TEST(MetricsRegistryTest, LabelsSplitMetricInstances) {
  MetricsRegistry reg;
  reg.Add("net.messages", "Query", 3);
  reg.Add("net.messages", "Publish", 1);
  reg.Add("net.messages", "Query", 2);
  EXPECT_EQ(reg.counter("net.messages", "Query"), 5u);
  EXPECT_EQ(reg.counter("net.messages", "Publish"), 1u);
  EXPECT_EQ(reg.counter("net.messages"), 0u);  // unlabeled is distinct
  EXPECT_EQ(reg.num_counters(), 2u);
}

TEST(MetricsRegistryTest, GaugesLastValueWins) {
  MetricsRegistry reg;
  reg.Set("peers.alive", 64.0);
  reg.Set("peers.alive", 63.0);
  EXPECT_DOUBLE_EQ(reg.gauge("peers.alive"), 63.0);
  EXPECT_DOUBLE_EQ(reg.gauge("missing"), 0.0);
}

TEST(MetricsRegistryTest, HistogramsRetainDistribution) {
  MetricsRegistry reg;
  for (int v = 1; v <= 100; ++v) {
    reg.Observe("latency", static_cast<double>(v));
  }
  const Histogram* h = reg.histogram("latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 100u);
  EXPECT_DOUBLE_EQ(h->Mean(), 50.5);
  EXPECT_EQ(reg.histogram("never-observed"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotExposesAllKinds) {
  MetricsRegistry reg;
  reg.Add("c", 4);
  reg.Set("g", 2.5);
  reg.Observe("h", 1.0);
  reg.Observe("h", 3.0);

  MetricsSnapshot snap = reg.Snapshot();
  const CounterSample* c = snap.FindCounter("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 4u);

  const GaugeSample* g = snap.FindGauge("g");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, 2.5);

  const HistogramSample* h = snap.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 4.0);
  EXPECT_DOUBLE_EQ(h->mean, 2.0);
  EXPECT_DOUBLE_EQ(h->min, 1.0);
  EXPECT_DOUBLE_EQ(h->max, 3.0);

  EXPECT_EQ(snap.FindCounter("absent"), nullptr);
  EXPECT_EQ(snap.FindGauge("absent"), nullptr);
  EXPECT_EQ(snap.FindHistogram("absent"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotPercentilesAreExact) {
  MetricsRegistry reg;
  for (int v = 1; v <= 100; ++v) {
    reg.Observe("d", static_cast<double>(v));
  }
  MetricsSnapshot snap = reg.Snapshot();
  const HistogramSample* d = snap.FindHistogram("d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count, 100u);
  EXPECT_GE(d->p50, 50.0);
  EXPECT_LE(d->p50, 51.0);
  EXPECT_GE(d->p90, 90.0);
  EXPECT_DOUBLE_EQ(d->p95, 95.0);
  EXPECT_GE(d->p99, 99.0);
  EXPECT_LE(d->p99, 100.0);
}

TEST(MetricsRegistryTest, EraseByNameRemovesEveryLabel) {
  MetricsRegistry reg;
  reg.Add("net.messages", "Query", 3);
  reg.Add("net.messages", "Publish", 1);
  reg.Add("net.bytes", "Query", 64);
  reg.Set("net.messages", "gaugeish", 1.0);
  reg.Observe("net.messages", "histish", 2.0);
  reg.EraseByName("net.messages");
  EXPECT_EQ(reg.counter("net.messages", "Query"), 0u);
  EXPECT_EQ(reg.counter("net.messages", "Publish"), 0u);
  EXPECT_EQ(reg.counter("net.bytes", "Query"), 64u);  // untouched
  EXPECT_DOUBLE_EQ(reg.gauge("net.messages", "gaugeish"), 0.0);
  EXPECT_EQ(reg.histogram("net.messages", "histish"), nullptr);
}

TEST(MetricsRegistryTest, ClearResetsEverything) {
  MetricsRegistry reg;
  reg.Add("c");
  reg.Set("g", 1.0);
  reg.Observe("h", 1.0);
  reg.Clear();
  EXPECT_EQ(reg.num_counters(), 0u);
  EXPECT_EQ(reg.num_gauges(), 0u);
  EXPECT_EQ(reg.num_histograms(), 0u);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(MetricsSnapshotTest, ToJsonContainsAllSections) {
  MetricsRegistry reg;
  reg.Add("search.queries", 3);
  reg.Add("net.messages", "Query", 7);
  reg.Set("peers.alive", 16.0);
  reg.Observe("latency.search.total_ms", 120.0);

  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"search.queries\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"Query\""), std::string::npos);
  EXPECT_NE(json.find("\"peers.alive\""), std::string::npos);
  EXPECT_NE(json.find("\"latency.search.total_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  // Unlabeled metrics omit the label field entirely.
  EXPECT_EQ(json.find("\"label\":\"\""), std::string::npos);
}

TEST(MetricsSnapshotTest, ToJsonEscapesStrings) {
  MetricsRegistry reg;
  reg.Add("weird\"name\\with\ncontrols", 1);
  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("weird\\\"name\\\\with\\ncontrols"), std::string::npos);
}

TEST(MetricsSnapshotTest, EmptyRegistryProducesValidSkeleton) {
  MetricsRegistry reg;
  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\": ["), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": ["), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": ["), std::string::npos);
  EXPECT_EQ(json.find("{\"name\""), std::string::npos);  // no entries
}

TEST(MetricsSnapshotTest, WriteJsonFileRoundTrips) {
  MetricsRegistry reg;
  reg.Add("x", 42);
  const std::string json = reg.Snapshot().ToJson();
  const std::string path =
      ::testing::TempDir() + "/sprite_obs_test_metrics.json";
  ASSERT_TRUE(WriteJsonFile(path, json));

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string read_back(json.size(), '\0');
  const size_t n = std::fread(read_back.data(), 1, read_back.size(), f);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_EQ(n, json.size());
  EXPECT_EQ(read_back, json);
}

// Count/sum/percentile consistency of a histogram snapshot on a fully
// known distribution (the integers 1..100). The nearest-rank percentile
// definition makes every expected value exact.
TEST(MetricsRegistryTest, HistogramSnapshotConsistentOnKnownDistribution) {
  MetricsRegistry reg;
  for (int v = 1; v <= 100; ++v) {
    reg.Observe("d", static_cast<double>(v));
  }
  const MetricsSnapshot snap = reg.Snapshot();
  const HistogramSample* d = snap.FindHistogram("d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count, 100u);
  EXPECT_DOUBLE_EQ(d->sum, 5050.0);
  EXPECT_DOUBLE_EQ(d->mean, d->sum / static_cast<double>(d->count));
  EXPECT_DOUBLE_EQ(d->min, 1.0);
  EXPECT_DOUBLE_EQ(d->max, 100.0);
  EXPECT_DOUBLE_EQ(d->p50, 50.0);
  EXPECT_DOUBLE_EQ(d->p90, 90.0);
  EXPECT_DOUBLE_EQ(d->p95, 95.0);
  EXPECT_DOUBLE_EQ(d->p99, 99.0);
  // Percentiles are monotone and bounded by the observed extremes.
  EXPECT_LE(d->min, d->p50);
  EXPECT_LE(d->p50, d->p90);
  EXPECT_LE(d->p90, d->p95);
  EXPECT_LE(d->p95, d->p99);
  EXPECT_LE(d->p99, d->max);
}

TEST(LoadSkewTest, MaxMeanRatioBasics) {
  EXPECT_DOUBLE_EQ(MaxMeanRatio({}), 0.0);
  EXPECT_DOUBLE_EQ(MaxMeanRatio({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(MaxMeanRatio({2.0, 2.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(MaxMeanRatio({0.0, 0.0, 4.0}), 3.0);
}

TEST(LoadSkewTest, GiniCoefficientBasics) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({5.0, 5.0, 5.0, 5.0}), 0.0);
  // One peer carries everything: (2*4*4)/(4*4) - 5/4 = 0.75.
  EXPECT_DOUBLE_EQ(GiniCoefficient({0.0, 0.0, 0.0, 4.0}), 0.75);
  // Skew is order-independent.
  EXPECT_DOUBLE_EQ(GiniCoefficient({4.0, 0.0, 0.0, 0.0}), 0.75);
  // More even distributions score lower.
  EXPECT_LT(GiniCoefficient({1.0, 2.0, 3.0, 4.0}),
            GiniCoefficient({0.0, 0.0, 1.0, 9.0}));
}

TEST(LatencyModelTest, ComponentsAreAdditiveAndLinear) {
  LatencyParams p;
  p.hop_rtt_ms = 40.0;
  p.bandwidth_bytes_per_sec = 1e6;  // 1000 bytes per ms
  p.rank_ms_per_posting = 0.01;
  LatencyModel model(p);

  EXPECT_DOUBLE_EQ(model.HopsMs(0), 0.0);
  EXPECT_DOUBLE_EQ(model.HopsMs(3), 120.0);
  EXPECT_DOUBLE_EQ(model.RequestMs(2), 80.0);
  EXPECT_DOUBLE_EQ(model.TransferMs(500000), 500.0);
  EXPECT_DOUBLE_EQ(model.RankMs(200), 2.0);
  EXPECT_DOUBLE_EQ(model.OperationMs(3, 2, 500000),
                   model.HopsMs(3) + model.RequestMs(2) +
                       model.TransferMs(500000));
}

TEST(LatencyModelTest, ZeroBandwidthMeansFreeTransfer) {
  LatencyParams p;
  p.bandwidth_bytes_per_sec = 0.0;
  LatencyModel model(p);
  EXPECT_DOUBLE_EQ(model.TransferMs(1 << 20), 0.0);
}

TEST(LatencyModelTest, DefaultsMatchConfigDefaults) {
  core::SpriteConfig config;
  LatencyParams p;
  EXPECT_DOUBLE_EQ(config.hop_rtt_ms, p.hop_rtt_ms);
  EXPECT_DOUBLE_EQ(config.bandwidth_bytes_per_sec, p.bandwidth_bytes_per_sec);
}

// --- SpriteSystem integration ------------------------------------------

text::TermVector TV(const std::vector<std::string>& tokens) {
  return text::TermVector::FromTokens(tokens);
}

corpus::Query Q(corpus::QueryId id, std::vector<std::string> terms) {
  return corpus::Query{id, std::move(terms)};
}

core::SpriteConfig SmallConfig() {
  core::SpriteConfig c;
  c.num_peers = 16;
  c.initial_terms = 2;
  c.terms_per_iteration = 2;
  c.max_index_terms = 6;
  return c;
}

class ObsIntegrationTest : public ::testing::Test {
 protected:
  ObsIntegrationTest() {
    corpus_.AddDocument(TV({"cat", "cat", "cat", "feline", "feline",
                            "whisker", "purr"}));
    corpus_.AddDocument(TV({"dog", "dog", "dog", "canine", "canine",
                            "leash", "bark"}));
    corpus_.AddDocument(TV({"pet", "pet", "cat", "dog", "food"}));
  }

  corpus::Corpus corpus_;
};

TEST_F(ObsIntegrationTest, SearchFeedsPhaseMetrics) {
  core::SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  ASSERT_TRUE(system.Search(Q(1, {"cat", "dog"}), 10).ok());
  ASSERT_TRUE(system.Search(Q(2, {"feline"}), 10).ok());

  const MetricsRegistry& m = system.metrics();
  EXPECT_EQ(m.counter("search.queries"), 2u);
  const Histogram* total = m.histogram("latency.search.total_ms");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count(), 2u);
  ASSERT_NE(m.histogram("latency.search.route_ms"), nullptr);
  ASSERT_NE(m.histogram("latency.search.fetch_ms"), nullptr);
  ASSERT_NE(m.histogram("latency.search.rank_ms"), nullptr);
  // Fetch involves at least one request round trip per query.
  EXPECT_GT(m.histogram("latency.search.fetch_ms")->Mean(), 0.0);
  ASSERT_NE(m.histogram("search.postings_fetched"), nullptr);
  EXPECT_GT(m.histogram("search.postings_fetched")->Mean(), 0.0);
}

TEST_F(ObsIntegrationTest, LearningFeedsPollMetrics) {
  core::SpriteSystem system(SmallConfig());
  system.RecordQuery(Q(1, {"cat", "whisker"}));
  system.RecordQuery(Q(2, {"cat", "whisker"}));
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  system.ClearMetrics();
  system.RunLearningIteration();

  const MetricsRegistry& m = system.metrics();
  EXPECT_EQ(m.counter("learning.iterations"), 1u);
  EXPECT_GT(m.counter("learning.polls"), 0u);
  EXPECT_GT(m.counter("learning.pulled_queries"), 0u);
  EXPECT_GT(m.counter("learning.terms_added"), 0u);
  ASSERT_NE(m.histogram("latency.learning.poll_ms"), nullptr);
}

TEST_F(ObsIntegrationTest, MaintenanceFeedsMetricsAndGauges) {
  core::SpriteConfig config = SmallConfig();
  config.replication_factor = 1;
  core::SpriteSystem system(config);
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());

  const MetricsRegistry& m = system.metrics();
  EXPECT_DOUBLE_EQ(m.gauge("peers.alive"), 16.0);
  EXPECT_DOUBLE_EQ(m.gauge("peers.total"), 16.0);

  system.ReplicateIndexes();
  EXPECT_GT(m.counter("replication.pushes"), 0u);
  ASSERT_NE(m.histogram("latency.replication.push_ms"), nullptr);

  const size_t probes = system.RunHeartbeats();
  EXPECT_EQ(m.counter("heartbeat.probes"), probes);
  EXPECT_EQ(m.counter("heartbeat.rounds"), 1u);
  ASSERT_NE(m.histogram("latency.heartbeat.round_ms"), nullptr);

  // Network traffic is mirrored per message type.
  EXPECT_GT(m.counter("net.messages", "Replicate"), 0u);
  EXPECT_GT(m.counter("net.bytes", "Heartbeat"), 0u);

  // Failing a peer moves the gauge and counts the event.
  ASSERT_TRUE(system.FailPeer(system.ring().AliveIds().front()).ok());
  EXPECT_DOUBLE_EQ(m.gauge("peers.alive"), 15.0);
  EXPECT_EQ(m.counter("peers.failed"), 1u);
}

TEST_F(ObsIntegrationTest, ChordLookupsAreMirrored) {
  core::SpriteSystem system(SmallConfig());
  system.ClearMetrics();
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  const MetricsRegistry& m = system.metrics();
  EXPECT_GT(m.counter("chord.lookups"), 0u);
  const Histogram* hops = m.histogram("chord.lookup_hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_GT(hops->count(), 0u);
}

// Regression: the raw NetworkStats and the mirrored net.* counters must
// reset together — a bench that calls ClearNetworkStats() between phases
// used to leave the registry still holding the pre-reset totals.
TEST_F(ObsIntegrationTest, ClearNetworkStatsResetsMirrorCounters) {
  core::SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  const MetricsRegistry& m = system.metrics();
  ASSERT_GT(system.network_stats().TotalMessages(), 0u);
  ASSERT_GT(m.counter("net.messages", "PublishTerm"), 0u);

  system.ClearNetworkStats();
  EXPECT_EQ(system.network_stats().TotalMessages(), 0u);
  EXPECT_EQ(system.network_stats().TotalBytes(), 0u);
  MetricsSnapshot snap = system.metrics().Snapshot();
  for (const CounterSample& c : snap.counters) {
    EXPECT_NE(c.id.name, "net.messages") << c.id.label;
    EXPECT_NE(c.id.name, "net.bytes") << c.id.label;
  }

  // Both views agree again after new traffic.
  ASSERT_TRUE(system.Search(Q(9, {"cat", "dog"}), 10).ok());
  uint64_t mirrored = 0;
  for (const CounterSample& c : system.metrics().Snapshot().counters) {
    if (c.id.name == "net.messages") mirrored += c.value;
  }
  EXPECT_EQ(mirrored, system.network_stats().TotalMessages());
}

// Same story for the chord.* mirrors behind ChordRing::ClearStats().
TEST_F(ObsIntegrationTest, ClearRingStatsResetsMirrorCounters) {
  core::SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  ASSERT_GT(system.metrics().counter("chord.lookups"), 0u);
  system.mutable_ring().ClearStats();
  EXPECT_EQ(system.ring().stats().lookups, 0u);
  EXPECT_EQ(system.metrics().counter("chord.lookups"), 0u);
  EXPECT_EQ(system.metrics().counter("chord.failed_lookups"), 0u);
  EXPECT_EQ(system.metrics().histogram("chord.lookup_hops"), nullptr);
}

// And for the cache.* mirrors: ClearMetrics() must zero the CacheManager
// stats together with the mirrored counters — while keeping the cached
// contents warm, with the occupancy gauges still reflecting them.
TEST_F(ObsIntegrationTest, ClearMetricsResetsCacheMirrorsButKeepsContents) {
  core::SpriteConfig config = SmallConfig();
  config.enable_result_cache = true;
  config.enable_posting_cache = true;
  core::SpriteSystem system(config);
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  // 20 issuances over 16 peers: the pigeonhole guarantees hits.
  for (uint32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(system.Search(Q(1, {"cat", "dog"}), 10, false).ok());
  }
  const cache::CacheManager& cm = system.query_cache();
  const cache::CacheTierStats& rs = cm.stats(cache::CacheTier::kResult);
  ASSERT_GT(rs.hits, 0u);
  ASSERT_EQ(system.metrics().counter("cache.result.hits"), rs.hits);
  ASSERT_EQ(system.metrics().counter("cache.result.lookups"), rs.lookups);
  const size_t entries = cm.entries(cache::CacheTier::kResult);
  ASSERT_GT(entries, 0u);

  system.ClearMetrics();

  EXPECT_EQ(rs.lookups, 0u);
  EXPECT_EQ(rs.hits, 0u);
  EXPECT_EQ(cm.stats(cache::CacheTier::kPosting).lookups, 0u);
  EXPECT_EQ(system.metrics().counter("cache.result.lookups"), 0u);
  EXPECT_EQ(system.metrics().counter("cache.result.hits"), 0u);
  EXPECT_EQ(system.metrics().counter("cache.posting.lookups"), 0u);
  // Contents survive: same occupancy, gauges republished, and the very
  // next issuance can still hit without refilling.
  EXPECT_EQ(cm.entries(cache::CacheTier::kResult), entries);
  EXPECT_DOUBLE_EQ(system.metrics().gauge("cache.result.entries"),
                   static_cast<double>(entries));

  for (uint32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(system.Search(Q(2, {"cat", "dog"}), 10, false).ok());
  }
  EXPECT_GT(rs.hits, 0u);
  EXPECT_EQ(system.metrics().counter("cache.result.hits"), rs.hits);
  EXPECT_EQ(system.metrics().counter("cache.result.lookups"), rs.lookups);
}

// ClearMetrics wipes every view at once and restores the membership
// gauges, so post-clear snapshots stay truthful.
TEST_F(ObsIntegrationTest, ClearMetricsLeavesViewsConsistent) {
  core::SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  ASSERT_TRUE(system.Search(Q(1, {"cat"}), 10).ok());
  system.ClearMetrics();
  EXPECT_EQ(system.metrics().counter("search.queries"), 0u);
  EXPECT_EQ(system.network_stats().TotalMessages(), 0u);
  EXPECT_EQ(system.ring().stats().lookups, 0u);
  EXPECT_DOUBLE_EQ(system.metrics().gauge("peers.alive"), 16.0);
  EXPECT_DOUBLE_EQ(system.metrics().gauge("peers.total"), 16.0);
}

TEST_F(ObsIntegrationTest, ExportLoadMetricsPublishesGaugesAndSkew) {
  core::SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  ASSERT_TRUE(system.Search(Q(1, {"cat", "dog"}), 10).ok());
  ASSERT_TRUE(system.Search(Q(2, {"cat"}), 10).ok());
  system.ExportLoadMetrics();

  const MetricsRegistry& m = system.metrics();
  EXPECT_GT(m.gauge("load.postings.max"), 0.0);
  EXPECT_GT(m.gauge("load.postings.mean"), 0.0);
  EXPECT_GE(m.gauge("load.postings.max_mean_ratio"), 1.0);
  EXPECT_GE(m.gauge("load.postings.gini"), 0.0);
  EXPECT_GT(m.gauge("load.queries.max"), 0.0);
  EXPECT_GE(m.gauge("load.queries.max_mean_ratio"), 1.0);

  // Per-peer gauges are labeled peer-<id>.
  MetricsSnapshot snap = m.Snapshot();
  size_t labeled = 0;
  for (const GaugeSample& g : snap.gauges) {
    if (g.id.name == "load.postings" && !g.id.label.empty()) ++labeled;
  }
  EXPECT_GT(labeled, 0u);
}

// The posting-store byte gauges (ISSUE 9): raw vs encoded resident bytes
// per peer plus cluster totals and their quotient, published alongside the
// other load.* gauges and — per the §8 reset audit — erased with them by
// ClearMetrics().
TEST_F(ObsIntegrationTest, ExportLoadMetricsPublishesCompressionGauges) {
  core::SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  system.ExportLoadMetrics();

  const MetricsRegistry& m = system.metrics();
  const double raw = m.gauge("load.posting_bytes_raw.total");
  const double encoded = m.gauge("load.posting_bytes_encoded.total");
  EXPECT_GT(raw, 0.0);
  EXPECT_GT(encoded, 0.0);
  // Raw charges sizeof(PostingEntry) per posting; short lists are stored
  // raw and long ones shrink, so encoded never exceeds raw.
  EXPECT_LE(encoded, raw);
  EXPECT_GE(m.gauge("load.posting_compression_ratio"), 1.0);

  const auto labeled_count = [&system](const char* name) {
    size_t count = 0;
    for (const GaugeSample& g : system.metrics().Snapshot().gauges) {
      if (g.id.name == name && !g.id.label.empty()) ++count;
    }
    return count;
  };
  EXPECT_GT(labeled_count("load.posting_bytes_raw"), 0u);
  EXPECT_GT(labeled_count("load.posting_bytes_encoded"), 0u);

  system.ClearMetrics();
  EXPECT_EQ(m.gauge("load.posting_bytes_raw.total"), 0.0);
  EXPECT_EQ(m.gauge("load.posting_bytes_encoded.total"), 0.0);
  EXPECT_EQ(m.gauge("load.posting_compression_ratio"), 0.0);
  EXPECT_EQ(labeled_count("load.posting_bytes_raw"), 0u);
  EXPECT_EQ(labeled_count("load.posting_bytes_encoded"), 0u);
}

// --- Time-series recorder ----------------------------------------------

TEST(TimeSeriesTest, DisabledCaptureIsNoOp) {
  MetricsRegistry reg;
  reg.Add("c", 3);
  TimeSeriesRecorder rec;
  EXPECT_EQ(rec.Capture(reg.Snapshot(), 0, 0.0, "x"), nullptr);
  EXPECT_TRUE(rec.points().empty());
  EXPECT_EQ(rec.num_captured(), 0u);
}

TEST(TimeSeriesTest, CapturesUnlabeledMetricsWithCounterDeltas) {
  MetricsRegistry reg;
  reg.Add("c", 5);
  reg.Add("c", "some-label", 99);  // labeled: never captured
  reg.Set("g", 1.5);
  reg.Observe("h", 10.0);
  MetricsRegistry mirror;
  TimeSeriesRecorder rec;
  rec.AttachMetrics(&mirror);
  rec.set_enabled(true);

  const TimeSeriesPoint* p1 = rec.Capture(reg.Snapshot(), 1, 100.0, "a");
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->index, 0u);
  EXPECT_EQ(p1->round, 1u);
  EXPECT_DOUBLE_EQ(p1->sim_time_ms, 100.0);
  EXPECT_EQ(p1->label, "a");
  ASSERT_EQ(p1->counters.count("c"), 1u);
  EXPECT_EQ(p1->counters.at("c"), 5u);
  EXPECT_DOUBLE_EQ(p1->gauges.at("g"), 1.5);
  EXPECT_EQ(p1->histograms.at("h").count, 1u);
  EXPECT_EQ(p1->counters.size(), 1u);  // the labeled instance is excluded

  reg.Add("c", 2);
  const TimeSeriesPoint* p2 = rec.Capture(reg.Snapshot(), 2, 200.0, "b");
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->counters.at("c"), 7u);
  EXPECT_EQ(mirror.counter("timeseries.points"), 2u);

  const std::string jsonl = rec.ToJsonl();
  EXPECT_NE(jsonl.find("\"format\":\"sprite-timeseries-jsonl\""),
            std::string::npos);
  // Cumulative + delta views: the second point gained 2 on 'c'.
  EXPECT_NE(jsonl.find("\"total\":7,\"delta\":2"), std::string::npos);
  // First point's delta equals its total.
  EXPECT_NE(jsonl.find("\"total\":5,\"delta\":5"), std::string::npos);
}

TEST(TimeSeriesTest, SelectionListsRestrictCapture) {
  MetricsRegistry reg;
  reg.Add("keep", 1);
  reg.Add("drop", 1);
  reg.Set("keep.g", 1.0);
  reg.Set("drop.g", 2.0);
  TimeSeriesOptions options;
  options.counters = {"keep"};
  options.gauges = {"keep.g"};
  TimeSeriesRecorder rec(options);
  rec.set_enabled(true);
  const TimeSeriesPoint* p = rec.Capture(reg.Snapshot(), 0, 0.0, "");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->counters.count("keep"), 1u);
  EXPECT_EQ(p->counters.count("drop"), 0u);
  EXPECT_EQ(p->gauges.count("keep.g"), 1u);
  EXPECT_EQ(p->gauges.count("drop.g"), 0u);
}

TEST(TimeSeriesTest, RingRetentionEvictsOldestAndClearResets) {
  MetricsRegistry reg;
  reg.Add("c", 1);
  MetricsRegistry mirror;
  TimeSeriesOptions options;
  options.capacity = 2;
  TimeSeriesRecorder rec(options);
  rec.AttachMetrics(&mirror);
  rec.set_enabled(true);
  for (uint64_t i = 0; i < 3; ++i) {
    reg.Add("c", 1);
    ASSERT_NE(rec.Capture(reg.Snapshot(), i, 0.0, "p"), nullptr);
  }
  ASSERT_EQ(rec.points().size(), 2u);
  EXPECT_EQ(rec.num_captured(), 3u);
  EXPECT_EQ(rec.points().front().index, 1u);  // index 0 evicted
  EXPECT_EQ(rec.points().back().index, 2u);
  EXPECT_EQ(mirror.counter("timeseries.points"), 3u);

  rec.Clear();
  EXPECT_TRUE(rec.points().empty());
  EXPECT_EQ(rec.num_captured(), 0u);
  EXPECT_EQ(mirror.counter("timeseries.points"), 0u);
  EXPECT_TRUE(rec.enabled());  // configuration survives the reset

  // The sequence restarts from zero, as a fresh epoch.
  ASSERT_NE(rec.Capture(reg.Snapshot(), 9, 0.0, "q"), nullptr);
  EXPECT_EQ(rec.points().front().index, 0u);
}

TEST(TimeSeriesTest, CsvHasStableColumnsAndEmptyCells) {
  MetricsRegistry reg;
  reg.Add("c", 4);
  TimeSeriesRecorder rec;
  rec.set_enabled(true);
  ASSERT_NE(rec.Capture(reg.Snapshot(), 0, 1.0, "one"), nullptr);
  reg.Set("late.g", 7.0);  // appears only from the second point on
  ASSERT_NE(rec.Capture(reg.Snapshot(), 1, 2.0, "two"), nullptr);
  const std::string csv = rec.ToCsv();
  EXPECT_EQ(csv.rfind("index,round,sim_time_ms,label", 0), 0u);
  EXPECT_NE(csv.find("c.c,c.c.delta"), std::string::npos);
  EXPECT_NE(csv.find("g.late.g"), std::string::npos);
  // Three lines: header + two points.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

// --- SLO watchdog -------------------------------------------------------

TimeSeriesPoint MakePoint(uint64_t index, double recall, uint64_t queries) {
  TimeSeriesPoint p;
  p.index = index;
  p.round = index;
  p.gauges["bench.recall_ratio"] = recall;
  p.counters["search.queries"] = queries;
  HistogramView h;
  h.count = 10;
  h.p95 = 120.0;
  p.histograms["latency.search.total_ms"] = h;
  return p;
}

TEST(SloTest, ResolveTimeSeriesMetricFindsEveryKind) {
  TimeSeriesPoint p = MakePoint(0, 0.8, 42);
  double v = 0.0;
  ASSERT_TRUE(ResolveTimeSeriesMetric(p, "bench.recall_ratio", &v));
  EXPECT_DOUBLE_EQ(v, 0.8);
  ASSERT_TRUE(ResolveTimeSeriesMetric(p, "search.queries", &v));
  EXPECT_DOUBLE_EQ(v, 42.0);
  ASSERT_TRUE(ResolveTimeSeriesMetric(p, "latency.search.total_ms.p95", &v));
  EXPECT_DOUBLE_EQ(v, 120.0);
  ASSERT_TRUE(ResolveTimeSeriesMetric(p, "latency.search.total_ms.count", &v));
  EXPECT_DOUBLE_EQ(v, 10.0);
  EXPECT_FALSE(ResolveTimeSeriesMetric(p, "absent", &v));
  EXPECT_FALSE(ResolveTimeSeriesMetric(p, "latency.search.total_ms.p42", &v));
}

TEST(SloTest, UpperBoundFiresOnlyAboveThreshold) {
  SloWatchdog dog;
  dog.AddRule({"p95-budget", "latency.search.total_ms.p95",
               SloRuleKind::kUpperBound, 150.0});
  TimeSeriesPoint ok = MakePoint(0, 0.8, 1);
  EXPECT_EQ(dog.Evaluate(ok, nullptr), 0u);
  TimeSeriesPoint slow = MakePoint(1, 0.8, 2);
  slow.histograms["latency.search.total_ms"].p95 = 151.0;
  EXPECT_EQ(dog.Evaluate(slow, &ok), 1u);
  ASSERT_EQ(dog.alerts().size(), 1u);
  EXPECT_EQ(dog.alerts()[0].rule, "p95-budget");
  EXPECT_DOUBLE_EQ(dog.alerts()[0].value, 151.0);
  EXPECT_FALSE(dog.alerts()[0].has_previous);
}

TEST(SloTest, DeltaDropComparesAgainstPrevious) {
  SloWatchdog dog;
  dog.AddRule({"recall-drop", "bench.recall_ratio", SloRuleKind::kDeltaDrop,
               0.05});
  TimeSeriesPoint first = MakePoint(0, 0.80, 1);
  // No previous point: delta rules cannot fire at the first capture.
  EXPECT_EQ(dog.Evaluate(first, nullptr), 0u);
  TimeSeriesPoint dip = MakePoint(1, 0.70, 2);
  EXPECT_EQ(dog.Evaluate(dip, &first), 1u);
  ASSERT_EQ(dog.alerts().size(), 1u);
  EXPECT_TRUE(dog.alerts()[0].has_previous);
  EXPECT_DOUBLE_EQ(dog.alerts()[0].previous, 0.80);
  EXPECT_DOUBLE_EQ(dog.alerts()[0].value, 0.70);
  // A small dip within the threshold stays quiet.
  TimeSeriesPoint small = MakePoint(2, 0.66, 3);
  EXPECT_EQ(dog.Evaluate(small, &dip), 0u);
}

TEST(SloTest, NegativeDeltaDropThresholdAssertsImprovement) {
  // threshold -0.02 means "fire unless the metric improved by > 0.02" —
  // the convergence watchdog tools/ci.sh arms on the Fig. 4(a) curve.
  SloWatchdog dog;
  dog.AddRule({"must-improve", "bench.recall_ratio", SloRuleKind::kDeltaDrop,
               -0.02});
  TimeSeriesPoint a = MakePoint(0, 0.60, 1);
  TimeSeriesPoint improved = MakePoint(1, 0.70, 2);
  EXPECT_EQ(dog.Evaluate(improved, &a), 0u);
  TimeSeriesPoint flat = MakePoint(2, 0.71, 3);
  EXPECT_EQ(dog.Evaluate(flat, &improved), 1u);  // +0.01 < required +0.02
}

TEST(SloTest, SpikeFiresOnRise) {
  SloWatchdog dog;
  dog.AddRule({"stale-spike", "search.queries", SloRuleKind::kSpike, 5.0});
  TimeSeriesPoint a = MakePoint(0, 0.8, 10);
  TimeSeriesPoint b = MakePoint(1, 0.8, 14);
  EXPECT_EQ(dog.Evaluate(b, &a), 0u);  // +4 <= 5
  TimeSeriesPoint c = MakePoint(2, 0.8, 20);
  EXPECT_EQ(dog.Evaluate(c, &b), 1u);  // +6 > 5
}

TEST(SloTest, AlertsMirroredIntoRegistryAndCleared) {
  MetricsRegistry reg;
  SloWatchdog dog;
  dog.AttachMetrics(&reg);
  dog.AddRule({"bound", "bench.recall_ratio", SloRuleKind::kUpperBound, 0.5});
  TimeSeriesPoint p = MakePoint(0, 0.9, 1);
  EXPECT_EQ(dog.Evaluate(p, nullptr), 1u);
  EXPECT_EQ(reg.counter("slo.alerts"), 1u);
  EXPECT_EQ(reg.counter("slo.alerts", "bound"), 1u);
  EXPECT_NE(dog.ToJsonl().find("\"format\":\"sprite-slo-jsonl\""),
            std::string::npos);

  dog.ClearAlerts();
  EXPECT_TRUE(dog.alerts().empty());
  EXPECT_EQ(reg.counter("slo.alerts"), 0u);
  EXPECT_EQ(reg.counter("slo.alerts", "bound"), 0u);
  // §8: resets clear state, not configuration.
  EXPECT_EQ(dog.rules().size(), 1u);
}

// --- Explain ledger + miss attribution + §8 reset audit -----------------

core::SpriteConfig TelemetryConfig() {
  core::SpriteConfig c = SmallConfig();
  c.enable_timeseries = true;
  c.enable_explain = true;
  return c;
}

TEST_F(ObsIntegrationTest, ExplainDecomposesSearch) {
  core::SpriteSystem system(TelemetryConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  ASSERT_TRUE(system.Search(Q(1, {"cat", "dog"}), 10).ok());

  const SearchExplain* ex = system.explainer().latest_search();
  ASSERT_NE(ex, nullptr);
  EXPECT_EQ(ex->query, "cat dog");
  EXPECT_FALSE(ex->served_from_result_cache);
  ASSERT_EQ(ex->terms.size(), 2u);
  for (const TermExplain& t : ex->terms) {
    EXPECT_FALSE(t.skipped);
    EXPECT_NE(t.peer, 0u);
    EXPECT_GT(t.indexed_df, 0u);  // both terms are initially indexed
    EXPECT_GT(t.idf, 0.0);
  }
  ASSERT_FALSE(ex->candidates.empty());
  for (const CandidateExplain& c : ex->candidates) {
    EXPECT_GT(c.score, 0.0);
    // The normalization denominator: the doc's distinct terms, at least
    // as many as the query terms that matched it.
    EXPECT_GE(c.distinct_terms, c.contributions.size());
    ASSERT_FALSE(c.contributions.empty());
    for (const auto& [term, w] : c.contributions) {
      EXPECT_TRUE(term == "cat" || term == "dog") << term;
      EXPECT_GT(w, 0.0);
    }
  }
  EXPECT_EQ(system.metrics().counter("explain.searches"), 1u);
}

TEST_F(ObsIntegrationTest, ExplainLedgerRecordsPublishAndWithdraw) {
  core::SpriteConfig config = TelemetryConfig();
  config.max_index_terms = 2;       // at the cap: adding forces eviction
  config.terms_per_iteration = 1;
  core::SpriteSystem system(config);
  // The query must share an indexed term ("cat") with doc 0: owners only
  // discover queries by polling the peers of their *indexed* terms, so a
  // pure-"whisker" query would sit at peer(whisker), never polled.
  system.RecordQuery(Q(1, {"cat", "whisker"}));
  system.RecordQuery(Q(2, {"cat", "whisker"}));
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  system.RunLearningIteration();

  const auto& decisions = system.explainer().decisions();
  ASSERT_FALSE(decisions.empty());
  bool published_whisker = false, withdrew_initial = false;
  for (const LearningDecision& d : decisions) {
    EXPECT_EQ(d.round, 1u);
    if (d.verdict == "publish" && d.term == "whisker") {
      published_whisker = true;
      EXPECT_GT(d.qscore, 0.0);
      EXPECT_GE(d.query_freq, 2u);
      EXPECT_GE(d.score, 0.0);  // Score(t,D) = qScore * log10(QF)
    }
    if (d.verdict == "withdraw") {
      withdrew_initial = true;
      // The evicted term was never queried: the learner's -1 sentinel.
      EXPECT_LT(d.score, 0.0);
    }
  }
  EXPECT_TRUE(published_whisker);
  EXPECT_TRUE(withdrew_initial);
  EXPECT_EQ(system.metrics().counter("explain.decisions"),
            decisions.size());
}

TEST_F(ObsIntegrationTest, MissAttributionNeverIndexed) {
  core::SpriteSystem system(TelemetryConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  // "purr" is below doc 0's two initial index terms and no learning ran.
  auto results = system.Search(Q(1, {"purr"}), 0, /*record=*/false);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
  auto attribution = system.AttributeMisses(Q(1, {"purr"}), {0});
  ASSERT_EQ(attribution.size(), 1u);
  EXPECT_EQ(attribution[0].doc, 0u);
  EXPECT_EQ(attribution[0].cause, core::MissCause::kNeverIndexed);
  EXPECT_EQ(attribution[0].term, "purr");
}

TEST_F(ObsIntegrationTest, MissAttributionWithdrawnByLearning) {
  core::SpriteConfig config = TelemetryConfig();
  config.max_index_terms = 2;
  config.terms_per_iteration = 1;
  core::SpriteSystem system(config);
  system.RecordQuery(Q(1, {"cat", "whisker"}));
  system.RecordQuery(Q(2, {"cat", "whisker"}));
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  system.RunLearningIteration();

  // Find the term learning evicted from doc 0 and query exactly it.
  std::string withdrawn;
  for (const LearningDecision& d : system.explainer().decisions()) {
    if (d.verdict == "withdraw" && d.doc == 0) withdrawn = d.term;
  }
  ASSERT_FALSE(withdrawn.empty());
  auto results = system.Search(Q(3, {withdrawn}), 0, /*record=*/false);
  ASSERT_TRUE(results.ok());
  for (const auto& scored : *results) EXPECT_NE(scored.doc, 0u);
  auto attribution = system.AttributeMisses(Q(3, {withdrawn}), {0});
  ASSERT_EQ(attribution.size(), 1u);
  EXPECT_EQ(attribution[0].cause, core::MissCause::kWithdrawn);
  EXPECT_EQ(attribution[0].term, withdrawn);
}

TEST_F(ObsIntegrationTest, MissAttributionChurnLost) {
  core::SpriteSystem system(TelemetryConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  // Kill the indexing peer responsible for "cat"; with replication off its
  // postings are gone even though the owners still list the term.
  auto node = system.ring().ResponsibleNode(
      system.ring().space().KeyForString("cat"));
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE(system.FailPeer(node.value()).ok());
  system.StabilizeNetwork(2);

  auto results = system.Search(Q(1, {"cat"}), 0, /*record=*/false);
  ASSERT_TRUE(results.ok());
  for (const auto& scored : *results) EXPECT_NE(scored.doc, 0u);
  auto attribution = system.AttributeMisses(Q(1, {"cat"}), {0});
  ASSERT_EQ(attribution.size(), 1u);
  EXPECT_EQ(attribution[0].cause, core::MissCause::kChurnLost);
  EXPECT_EQ(attribution[0].term, "cat");
}

// Every document the centralized oracle retrieves but SPRITE (at k = 0,
// i.e. no ranking cutoff) does not must be attributed to exactly one of
// the three causes — the ISSUE's structural guarantee.
TEST_F(ObsIntegrationTest, EveryMissAgainstCentralizedIsAttributed) {
  core::SpriteSystem system(TelemetryConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  ir::CentralizedIndex centralized(corpus_);

  const std::vector<corpus::Query> queries = {
      Q(1, {"cat", "dog"}), Q(2, {"purr"}), Q(3, {"leash", "bark"}),
      Q(4, {"pet", "food"})};
  for (const corpus::Query& q : queries) {
    auto results = system.Search(q, 0, /*record=*/false);
    ASSERT_TRUE(results.ok());
    std::vector<bool> got(corpus_.num_docs(), false);
    for (const auto& scored : *results) got[scored.doc] = true;
    std::vector<corpus::DocId> missed;
    for (const auto& scored : centralized.Search(q, 0)) {
      if (!got[scored.doc]) missed.push_back(scored.doc);
    }
    auto attribution = system.AttributeMisses(q, missed);
    ASSERT_EQ(attribution.size(), missed.size());
    for (size_t i = 0; i < missed.size(); ++i) {
      EXPECT_EQ(attribution[i].doc, missed[i]);
      EXPECT_FALSE(attribution[i].term.empty());
      const char* name = core::MissCauseName(attribution[i].cause);
      EXPECT_TRUE(std::string(name) == "never-indexed" ||
                  std::string(name) == "withdrawn-by-learning" ||
                  std::string(name) == "churn-lost")
          << name;
    }
  }
}

// §8 reset audit: ClearMetrics() must zero the time-series buffer, both
// explain ledgers, and the alert state together with their mirrored
// counters — and each subsystem must keep working afterwards.
TEST_F(ObsIntegrationTest, ClearMetricsResetsTelemetryLedgersAndMirrors) {
  core::SpriteSystem system(TelemetryConfig());
  system.mutable_slo().AddRule(
      {"alive-bound", "peers.alive", SloRuleKind::kUpperBound, 1.0});
  system.RecordQuery(Q(1, {"cat", "whisker"}));
  system.RecordQuery(Q(2, {"cat", "whisker"}));
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  system.RunLearningIteration();
  ASSERT_TRUE(system.Search(Q(3, {"cat"}), 10).ok());
  ASSERT_NE(system.CaptureTimeSeriesPoint("audit"), nullptr);

  ASSERT_FALSE(system.timeseries().points().empty());
  ASSERT_FALSE(system.explainer().searches().empty());
  ASSERT_FALSE(system.explainer().decisions().empty());
  ASSERT_FALSE(system.slo().alerts().empty());  // 16 alive peers > 1.0
  const MetricsRegistry& m = system.metrics();
  ASSERT_GT(m.counter("timeseries.points"), 0u);
  ASSERT_GT(m.counter("explain.searches"), 0u);
  ASSERT_GT(m.counter("explain.decisions"), 0u);
  ASSERT_GT(m.counter("slo.alerts"), 0u);

  system.ClearMetrics();

  EXPECT_TRUE(system.timeseries().points().empty());
  EXPECT_EQ(system.timeseries().num_captured(), 0u);
  EXPECT_TRUE(system.explainer().searches().empty());
  EXPECT_TRUE(system.explainer().decisions().empty());
  EXPECT_TRUE(system.slo().alerts().empty());
  EXPECT_EQ(m.counter("timeseries.points"), 0u);
  EXPECT_EQ(m.counter("explain.searches"), 0u);
  EXPECT_EQ(m.counter("explain.decisions"), 0u);
  EXPECT_EQ(m.counter("slo.alerts"), 0u);
  // Rules are configuration, not state: they survive.
  EXPECT_EQ(system.slo().rules().size(), 1u);

  // The subsystems stay live after the reset.
  ASSERT_TRUE(system.Search(Q(4, {"dog"}), 10).ok());
  EXPECT_EQ(system.explainer().searches().size(), 1u);
  const TimeSeriesPoint* p = system.CaptureTimeSeriesPoint("fresh");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->index, 0u);  // fresh epoch
  EXPECT_EQ(m.counter("slo.alerts", "alive-bound"), 1u);  // re-fires
}

// §8 determinism contract: identical seeds and identical operation
// sequences must yield byte-identical telemetry dumps.
TEST_F(ObsIntegrationTest, TelemetryDumpsAreDeterministic) {
  auto run = [this]() {
    core::SpriteSystem system(TelemetryConfig());
    system.mutable_slo().AddRule(
        {"recall-drop", "bench.recall_ratio", SloRuleKind::kDeltaDrop, 0.1});
    system.RecordQuery(Q(1, {"whisker"}));
    EXPECT_TRUE(system.ShareCorpus(corpus_).ok());
    system.RunLearningIteration();
    EXPECT_TRUE(system.Search(Q(2, {"cat", "dog"}), 10).ok());
    system.mutable_metrics().Set("bench.recall_ratio", 0.9);
    system.CaptureTimeSeriesPoint("a");
    system.mutable_metrics().Set("bench.recall_ratio", 0.5);
    system.CaptureTimeSeriesPoint("b");  // drop of 0.4 > 0.1: one alert
    EXPECT_EQ(system.slo().alerts().size(), 1u);
    return std::make_tuple(system.timeseries().ToJsonl(),
                           system.timeseries().ToCsv(),
                           system.explainer().ToJsonl(),
                           system.slo().ToJsonl());
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(std::get<0>(first), std::get<0>(second));
  EXPECT_EQ(std::get<1>(first), std::get<1>(second));
  EXPECT_EQ(std::get<2>(first), std::get<2>(second));
  EXPECT_EQ(std::get<3>(first), std::get<3>(second));
}

// ---------------------------------------------------- wall profiler / perf

TEST(WallProfilerTest, DisabledProfilerRecordsNothing) {
  WallProfiler prof;
  EXPECT_FALSE(prof.enabled());
  prof.RecordNs("perf.test.section", 1000000);
  {
    ScopedWallTimer t(&prof, "perf.test.scoped");
  }
  const std::string json = prof.Snapshot().ToJson();
  EXPECT_EQ(json.find("perf.test"), std::string::npos);
}

TEST(WallProfilerTest, EnabledProfilerRecordsMicroseconds) {
  WallProfiler prof;
  prof.set_enabled(true);
  prof.RecordNs("perf.test.section", 1500000);  // 1.5 ms
  prof.RecordNs("perf.test.section", 500000);
  const MetricsSnapshot snap = prof.Snapshot();
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("perf.test.section_us"), std::string::npos);
  const HistogramSample* h = snap.FindHistogram("perf.test.section_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->max, 1500.0);
  EXPECT_DOUBLE_EQ(h->min, 500.0);
  prof.Clear();
  EXPECT_EQ(prof.Snapshot().ToJson().find("perf.test"), std::string::npos);
}

TEST(WallProfilerTest, ScopedTimerCapturesElapsedTime) {
  WallProfiler prof;
  prof.set_enabled(true);
  {
    ScopedWallTimer t(&prof, "perf.test.scope");
    // Spin a little so elapsed > 0 even on a coarse clock.
    volatile uint64_t acc = 1;
    for (int i = 0; i < 100000; ++i) acc = acc * 31 + 7;
  }
  const MetricsSnapshot snap = prof.Snapshot();
  const HistogramSample* h = snap.FindHistogram("perf.test.scope_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_GT(h->max, 0.0);
}

TEST(PerfTest, SampleResourcesReportsProcessUsage) {
  const ResourceSample s = SampleResources();
#if defined(__linux__)
  ASSERT_TRUE(s.ok);
  // A running test binary has resident memory and has burned CPU.
  EXPECT_GT(s.rss_mb, 0.0);
  EXPECT_GE(s.peak_rss_mb, s.rss_mb * 0.5);  // HWM can lag but not vanish
  EXPECT_GT(s.user_cpu_ms + s.sys_cpu_ms, 0.0);
#else
  (void)s;  // other platforms may report nothing; ok=false is legal
#endif
}

TEST(PerfTest, ReportJsonRoundTripsThroughParser) {
  PerfReport report;
  report.env.bench = "unit_test_bench";
  report.env.git_commit = "abc1234";
  report.env.build_type = "RelWithDebInfo";
  report.env.nproc = 8;
  report.env.threads = 2;
  report.env.docs = 100;
  report.env.peers = 16;
  report.env.seed = 42;
  report.env.warmup = 1;
  report.env.measured_reps = 3;
  PerfPhaseStat phase;
  phase.name = "train";
  phase.wall_ms.Add(10.0);
  phase.wall_ms.Add(12.0);
  phase.wall_ms.Add(11.0);
  phase.resources = SampleResources();
  phase.has_resources = true;
  report.phases.push_back(std::move(phase));
  report.workers.threads = 2;
  report.has_workers = true;

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema\":\"sprite-perf-v1\""), std::string::npos);

  ParsedPerfReport parsed;
  std::string error;
  ASSERT_TRUE(ParsePerfJson(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed.bench, "unit_test_bench");
  EXPECT_EQ(parsed.git_commit, "abc1234");
  EXPECT_DOUBLE_EQ(parsed.threads, 2.0);
  EXPECT_DOUBLE_EQ(parsed.nproc, 8.0);
  ASSERT_EQ(parsed.phases.size(), 1u);
  EXPECT_EQ(parsed.phases[0].name, "train");
  EXPECT_EQ(parsed.phases[0].reps, 3u);
  EXPECT_DOUBLE_EQ(parsed.phases[0].min_ms, 10.0);
  EXPECT_DOUBLE_EQ(parsed.phases[0].median_ms, 11.0);
  EXPECT_DOUBLE_EQ(parsed.phases[0].max_ms, 12.0);
}

TEST(PerfTest, ParseRejectsGarbage) {
  ParsedPerfReport parsed;
  std::string error;
  EXPECT_FALSE(ParsePerfJson("not json at all", &parsed, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParsePerfJson("{\"schema\": \"wrong-schema\"}", &parsed,
                             &error));
}


// --- Prometheus text exposition (served by /metrics?format=prometheus) ------

TEST(PrometheusTextTest, RendersAllThreeKindsWithTypesAndLabels) {
  MetricsRegistry reg;
  reg.Add("search.queries", 7);
  reg.Add("transport.frames", "query_request", 3);
  reg.Add("transport.frames", "heartbeat", 2);
  reg.Set("load.postings.gini", 0.25);
  reg.Observe("transport.rtt_us", "query_request", 100.0);
  reg.Observe("transport.rtt_us", "query_request", 300.0);
  const std::string text = PrometheusText(reg.Snapshot());
  // Counters: sprite_ prefix, dots to underscores, _total suffix.
  EXPECT_NE(text.find("# TYPE sprite_search_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("sprite_search_queries_total 7\n"), std::string::npos);
  // Labeled series share one TYPE line.
  EXPECT_EQ(text.find("# TYPE sprite_transport_frames_total counter"),
            text.rfind("# TYPE sprite_transport_frames_total counter"));
  EXPECT_NE(
      text.find("sprite_transport_frames_total{label=\"heartbeat\"} 2\n"),
      std::string::npos);
  EXPECT_NE(text.find(
                "sprite_transport_frames_total{label=\"query_request\"} 3\n"),
            std::string::npos);
  // Gauges render without a suffix.
  EXPECT_NE(text.find("# TYPE sprite_load_postings_gini gauge"),
            std::string::npos);
  EXPECT_NE(text.find("sprite_load_postings_gini 0.25\n"), std::string::npos);
  // Histograms render as summaries: quantiles + _sum/_count.
  EXPECT_NE(text.find("# TYPE sprite_transport_rtt_us summary"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "sprite_transport_rtt_us{label=\"query_request\",quantile=\"0.5\"}"),
      std::string::npos);
  EXPECT_NE(
      text.find("sprite_transport_rtt_us_sum{label=\"query_request\"} 400\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("sprite_transport_rtt_us_count{label=\"query_request\"} 2\n"),
      std::string::npos);
}

TEST(PrometheusTextTest, SanitizesNamesAndEscapesLabelValues) {
  MetricsRegistry reg;
  reg.Add("weird-name.v2", "a\"b\\c", 1);
  const std::string text = PrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("sprite_weird_name_v2_total"), std::string::npos);
  EXPECT_NE(text.find("{label=\"a\\\"b\\\\c\"} 1"), std::string::npos);
}

TEST(PrometheusTextTest, EmptySnapshotRendersEmpty) {
  MetricsRegistry reg;
  EXPECT_EQ(PrometheusText(reg.Snapshot()), "");
}

}  // namespace
}  // namespace sprite::obs
