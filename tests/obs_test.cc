// Tests for the observability subsystem: the metrics registry (counters,
// gauges, histograms, labels), the JSON snapshot export the benches write,
// the simulated-latency model, and the SpriteSystem integration that feeds
// per-phase metrics from the live system.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sprite_system.h"
#include "corpus/corpus.h"
#include "obs/latency_model.h"
#include "obs/metrics.h"

namespace sprite::obs {
namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter("requests"), 0u);
  reg.Add("requests");
  reg.Add("requests");
  reg.Add("requests", 5);
  EXPECT_EQ(reg.counter("requests"), 7u);
  EXPECT_EQ(reg.num_counters(), 1u);
}

TEST(MetricsRegistryTest, LabelsSplitMetricInstances) {
  MetricsRegistry reg;
  reg.Add("net.messages", "Query", 3);
  reg.Add("net.messages", "Publish", 1);
  reg.Add("net.messages", "Query", 2);
  EXPECT_EQ(reg.counter("net.messages", "Query"), 5u);
  EXPECT_EQ(reg.counter("net.messages", "Publish"), 1u);
  EXPECT_EQ(reg.counter("net.messages"), 0u);  // unlabeled is distinct
  EXPECT_EQ(reg.num_counters(), 2u);
}

TEST(MetricsRegistryTest, GaugesLastValueWins) {
  MetricsRegistry reg;
  reg.Set("peers.alive", 64.0);
  reg.Set("peers.alive", 63.0);
  EXPECT_DOUBLE_EQ(reg.gauge("peers.alive"), 63.0);
  EXPECT_DOUBLE_EQ(reg.gauge("missing"), 0.0);
}

TEST(MetricsRegistryTest, HistogramsRetainDistribution) {
  MetricsRegistry reg;
  for (int v = 1; v <= 100; ++v) {
    reg.Observe("latency", static_cast<double>(v));
  }
  const Histogram* h = reg.histogram("latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 100u);
  EXPECT_DOUBLE_EQ(h->Mean(), 50.5);
  EXPECT_EQ(reg.histogram("never-observed"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotExposesAllKinds) {
  MetricsRegistry reg;
  reg.Add("c", 4);
  reg.Set("g", 2.5);
  reg.Observe("h", 1.0);
  reg.Observe("h", 3.0);

  MetricsSnapshot snap = reg.Snapshot();
  const CounterSample* c = snap.FindCounter("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 4u);

  const GaugeSample* g = snap.FindGauge("g");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, 2.5);

  const HistogramSample* h = snap.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 4.0);
  EXPECT_DOUBLE_EQ(h->mean, 2.0);
  EXPECT_DOUBLE_EQ(h->min, 1.0);
  EXPECT_DOUBLE_EQ(h->max, 3.0);

  EXPECT_EQ(snap.FindCounter("absent"), nullptr);
  EXPECT_EQ(snap.FindGauge("absent"), nullptr);
  EXPECT_EQ(snap.FindHistogram("absent"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotPercentilesAreExact) {
  MetricsRegistry reg;
  for (int v = 1; v <= 100; ++v) {
    reg.Observe("d", static_cast<double>(v));
  }
  MetricsSnapshot snap = reg.Snapshot();
  const HistogramSample* d = snap.FindHistogram("d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count, 100u);
  EXPECT_GE(d->p50, 50.0);
  EXPECT_LE(d->p50, 51.0);
  EXPECT_GE(d->p90, 90.0);
  EXPECT_DOUBLE_EQ(d->p95, 95.0);
  EXPECT_GE(d->p99, 99.0);
  EXPECT_LE(d->p99, 100.0);
}

TEST(MetricsRegistryTest, EraseByNameRemovesEveryLabel) {
  MetricsRegistry reg;
  reg.Add("net.messages", "Query", 3);
  reg.Add("net.messages", "Publish", 1);
  reg.Add("net.bytes", "Query", 64);
  reg.Set("net.messages", "gaugeish", 1.0);
  reg.Observe("net.messages", "histish", 2.0);
  reg.EraseByName("net.messages");
  EXPECT_EQ(reg.counter("net.messages", "Query"), 0u);
  EXPECT_EQ(reg.counter("net.messages", "Publish"), 0u);
  EXPECT_EQ(reg.counter("net.bytes", "Query"), 64u);  // untouched
  EXPECT_DOUBLE_EQ(reg.gauge("net.messages", "gaugeish"), 0.0);
  EXPECT_EQ(reg.histogram("net.messages", "histish"), nullptr);
}

TEST(MetricsRegistryTest, ClearResetsEverything) {
  MetricsRegistry reg;
  reg.Add("c");
  reg.Set("g", 1.0);
  reg.Observe("h", 1.0);
  reg.Clear();
  EXPECT_EQ(reg.num_counters(), 0u);
  EXPECT_EQ(reg.num_gauges(), 0u);
  EXPECT_EQ(reg.num_histograms(), 0u);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(MetricsSnapshotTest, ToJsonContainsAllSections) {
  MetricsRegistry reg;
  reg.Add("search.queries", 3);
  reg.Add("net.messages", "Query", 7);
  reg.Set("peers.alive", 16.0);
  reg.Observe("latency.search.total_ms", 120.0);

  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"search.queries\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"Query\""), std::string::npos);
  EXPECT_NE(json.find("\"peers.alive\""), std::string::npos);
  EXPECT_NE(json.find("\"latency.search.total_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  // Unlabeled metrics omit the label field entirely.
  EXPECT_EQ(json.find("\"label\":\"\""), std::string::npos);
}

TEST(MetricsSnapshotTest, ToJsonEscapesStrings) {
  MetricsRegistry reg;
  reg.Add("weird\"name\\with\ncontrols", 1);
  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("weird\\\"name\\\\with\\ncontrols"), std::string::npos);
}

TEST(MetricsSnapshotTest, EmptyRegistryProducesValidSkeleton) {
  MetricsRegistry reg;
  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\": ["), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": ["), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": ["), std::string::npos);
  EXPECT_EQ(json.find("{\"name\""), std::string::npos);  // no entries
}

TEST(MetricsSnapshotTest, WriteJsonFileRoundTrips) {
  MetricsRegistry reg;
  reg.Add("x", 42);
  const std::string json = reg.Snapshot().ToJson();
  const std::string path =
      ::testing::TempDir() + "/sprite_obs_test_metrics.json";
  ASSERT_TRUE(WriteJsonFile(path, json));

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string read_back(json.size(), '\0');
  const size_t n = std::fread(read_back.data(), 1, read_back.size(), f);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_EQ(n, json.size());
  EXPECT_EQ(read_back, json);
}

TEST(LoadSkewTest, MaxMeanRatioBasics) {
  EXPECT_DOUBLE_EQ(MaxMeanRatio({}), 0.0);
  EXPECT_DOUBLE_EQ(MaxMeanRatio({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(MaxMeanRatio({2.0, 2.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(MaxMeanRatio({0.0, 0.0, 4.0}), 3.0);
}

TEST(LoadSkewTest, GiniCoefficientBasics) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({5.0, 5.0, 5.0, 5.0}), 0.0);
  // One peer carries everything: (2*4*4)/(4*4) - 5/4 = 0.75.
  EXPECT_DOUBLE_EQ(GiniCoefficient({0.0, 0.0, 0.0, 4.0}), 0.75);
  // Skew is order-independent.
  EXPECT_DOUBLE_EQ(GiniCoefficient({4.0, 0.0, 0.0, 0.0}), 0.75);
  // More even distributions score lower.
  EXPECT_LT(GiniCoefficient({1.0, 2.0, 3.0, 4.0}),
            GiniCoefficient({0.0, 0.0, 1.0, 9.0}));
}

TEST(LatencyModelTest, ComponentsAreAdditiveAndLinear) {
  LatencyParams p;
  p.hop_rtt_ms = 40.0;
  p.bandwidth_bytes_per_sec = 1e6;  // 1000 bytes per ms
  p.rank_ms_per_posting = 0.01;
  LatencyModel model(p);

  EXPECT_DOUBLE_EQ(model.HopsMs(0), 0.0);
  EXPECT_DOUBLE_EQ(model.HopsMs(3), 120.0);
  EXPECT_DOUBLE_EQ(model.RequestMs(2), 80.0);
  EXPECT_DOUBLE_EQ(model.TransferMs(500000), 500.0);
  EXPECT_DOUBLE_EQ(model.RankMs(200), 2.0);
  EXPECT_DOUBLE_EQ(model.OperationMs(3, 2, 500000),
                   model.HopsMs(3) + model.RequestMs(2) +
                       model.TransferMs(500000));
}

TEST(LatencyModelTest, ZeroBandwidthMeansFreeTransfer) {
  LatencyParams p;
  p.bandwidth_bytes_per_sec = 0.0;
  LatencyModel model(p);
  EXPECT_DOUBLE_EQ(model.TransferMs(1 << 20), 0.0);
}

TEST(LatencyModelTest, DefaultsMatchConfigDefaults) {
  core::SpriteConfig config;
  LatencyParams p;
  EXPECT_DOUBLE_EQ(config.hop_rtt_ms, p.hop_rtt_ms);
  EXPECT_DOUBLE_EQ(config.bandwidth_bytes_per_sec, p.bandwidth_bytes_per_sec);
}

// --- SpriteSystem integration ------------------------------------------

text::TermVector TV(const std::vector<std::string>& tokens) {
  return text::TermVector::FromTokens(tokens);
}

corpus::Query Q(corpus::QueryId id, std::vector<std::string> terms) {
  return corpus::Query{id, std::move(terms)};
}

core::SpriteConfig SmallConfig() {
  core::SpriteConfig c;
  c.num_peers = 16;
  c.initial_terms = 2;
  c.terms_per_iteration = 2;
  c.max_index_terms = 6;
  return c;
}

class ObsIntegrationTest : public ::testing::Test {
 protected:
  ObsIntegrationTest() {
    corpus_.AddDocument(TV({"cat", "cat", "cat", "feline", "feline",
                            "whisker", "purr"}));
    corpus_.AddDocument(TV({"dog", "dog", "dog", "canine", "canine",
                            "leash", "bark"}));
    corpus_.AddDocument(TV({"pet", "pet", "cat", "dog", "food"}));
  }

  corpus::Corpus corpus_;
};

TEST_F(ObsIntegrationTest, SearchFeedsPhaseMetrics) {
  core::SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  ASSERT_TRUE(system.Search(Q(1, {"cat", "dog"}), 10).ok());
  ASSERT_TRUE(system.Search(Q(2, {"feline"}), 10).ok());

  const MetricsRegistry& m = system.metrics();
  EXPECT_EQ(m.counter("search.queries"), 2u);
  const Histogram* total = m.histogram("latency.search.total_ms");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count(), 2u);
  ASSERT_NE(m.histogram("latency.search.route_ms"), nullptr);
  ASSERT_NE(m.histogram("latency.search.fetch_ms"), nullptr);
  ASSERT_NE(m.histogram("latency.search.rank_ms"), nullptr);
  // Fetch involves at least one request round trip per query.
  EXPECT_GT(m.histogram("latency.search.fetch_ms")->Mean(), 0.0);
  ASSERT_NE(m.histogram("search.postings_fetched"), nullptr);
  EXPECT_GT(m.histogram("search.postings_fetched")->Mean(), 0.0);
}

TEST_F(ObsIntegrationTest, LearningFeedsPollMetrics) {
  core::SpriteSystem system(SmallConfig());
  system.RecordQuery(Q(1, {"cat", "whisker"}));
  system.RecordQuery(Q(2, {"cat", "whisker"}));
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  system.ClearMetrics();
  system.RunLearningIteration();

  const MetricsRegistry& m = system.metrics();
  EXPECT_EQ(m.counter("learning.iterations"), 1u);
  EXPECT_GT(m.counter("learning.polls"), 0u);
  EXPECT_GT(m.counter("learning.pulled_queries"), 0u);
  EXPECT_GT(m.counter("learning.terms_added"), 0u);
  ASSERT_NE(m.histogram("latency.learning.poll_ms"), nullptr);
}

TEST_F(ObsIntegrationTest, MaintenanceFeedsMetricsAndGauges) {
  core::SpriteConfig config = SmallConfig();
  config.replication_factor = 1;
  core::SpriteSystem system(config);
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());

  const MetricsRegistry& m = system.metrics();
  EXPECT_DOUBLE_EQ(m.gauge("peers.alive"), 16.0);
  EXPECT_DOUBLE_EQ(m.gauge("peers.total"), 16.0);

  system.ReplicateIndexes();
  EXPECT_GT(m.counter("replication.pushes"), 0u);
  ASSERT_NE(m.histogram("latency.replication.push_ms"), nullptr);

  const size_t probes = system.RunHeartbeats();
  EXPECT_EQ(m.counter("heartbeat.probes"), probes);
  EXPECT_EQ(m.counter("heartbeat.rounds"), 1u);
  ASSERT_NE(m.histogram("latency.heartbeat.round_ms"), nullptr);

  // Network traffic is mirrored per message type.
  EXPECT_GT(m.counter("net.messages", "Replicate"), 0u);
  EXPECT_GT(m.counter("net.bytes", "Heartbeat"), 0u);

  // Failing a peer moves the gauge and counts the event.
  ASSERT_TRUE(system.FailPeer(system.ring().AliveIds().front()).ok());
  EXPECT_DOUBLE_EQ(m.gauge("peers.alive"), 15.0);
  EXPECT_EQ(m.counter("peers.failed"), 1u);
}

TEST_F(ObsIntegrationTest, ChordLookupsAreMirrored) {
  core::SpriteSystem system(SmallConfig());
  system.ClearMetrics();
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  const MetricsRegistry& m = system.metrics();
  EXPECT_GT(m.counter("chord.lookups"), 0u);
  const Histogram* hops = m.histogram("chord.lookup_hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_GT(hops->count(), 0u);
}

// Regression: the raw NetworkStats and the mirrored net.* counters must
// reset together — a bench that calls ClearNetworkStats() between phases
// used to leave the registry still holding the pre-reset totals.
TEST_F(ObsIntegrationTest, ClearNetworkStatsResetsMirrorCounters) {
  core::SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  const MetricsRegistry& m = system.metrics();
  ASSERT_GT(system.network_stats().TotalMessages(), 0u);
  ASSERT_GT(m.counter("net.messages", "PublishTerm"), 0u);

  system.ClearNetworkStats();
  EXPECT_EQ(system.network_stats().TotalMessages(), 0u);
  EXPECT_EQ(system.network_stats().TotalBytes(), 0u);
  MetricsSnapshot snap = system.metrics().Snapshot();
  for (const CounterSample& c : snap.counters) {
    EXPECT_NE(c.id.name, "net.messages") << c.id.label;
    EXPECT_NE(c.id.name, "net.bytes") << c.id.label;
  }

  // Both views agree again after new traffic.
  ASSERT_TRUE(system.Search(Q(9, {"cat", "dog"}), 10).ok());
  uint64_t mirrored = 0;
  for (const CounterSample& c : system.metrics().Snapshot().counters) {
    if (c.id.name == "net.messages") mirrored += c.value;
  }
  EXPECT_EQ(mirrored, system.network_stats().TotalMessages());
}

// Same story for the chord.* mirrors behind ChordRing::ClearStats().
TEST_F(ObsIntegrationTest, ClearRingStatsResetsMirrorCounters) {
  core::SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  ASSERT_GT(system.metrics().counter("chord.lookups"), 0u);
  system.mutable_ring().ClearStats();
  EXPECT_EQ(system.ring().stats().lookups, 0u);
  EXPECT_EQ(system.metrics().counter("chord.lookups"), 0u);
  EXPECT_EQ(system.metrics().counter("chord.failed_lookups"), 0u);
  EXPECT_EQ(system.metrics().histogram("chord.lookup_hops"), nullptr);
}

// And for the cache.* mirrors: ClearMetrics() must zero the CacheManager
// stats together with the mirrored counters — while keeping the cached
// contents warm, with the occupancy gauges still reflecting them.
TEST_F(ObsIntegrationTest, ClearMetricsResetsCacheMirrorsButKeepsContents) {
  core::SpriteConfig config = SmallConfig();
  config.enable_result_cache = true;
  config.enable_posting_cache = true;
  core::SpriteSystem system(config);
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  // 20 issuances over 16 peers: the pigeonhole guarantees hits.
  for (uint32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(system.Search(Q(1, {"cat", "dog"}), 10, false).ok());
  }
  const cache::CacheManager& cm = system.query_cache();
  const cache::CacheTierStats& rs = cm.stats(cache::CacheTier::kResult);
  ASSERT_GT(rs.hits, 0u);
  ASSERT_EQ(system.metrics().counter("cache.result.hits"), rs.hits);
  ASSERT_EQ(system.metrics().counter("cache.result.lookups"), rs.lookups);
  const size_t entries = cm.entries(cache::CacheTier::kResult);
  ASSERT_GT(entries, 0u);

  system.ClearMetrics();

  EXPECT_EQ(rs.lookups, 0u);
  EXPECT_EQ(rs.hits, 0u);
  EXPECT_EQ(cm.stats(cache::CacheTier::kPosting).lookups, 0u);
  EXPECT_EQ(system.metrics().counter("cache.result.lookups"), 0u);
  EXPECT_EQ(system.metrics().counter("cache.result.hits"), 0u);
  EXPECT_EQ(system.metrics().counter("cache.posting.lookups"), 0u);
  // Contents survive: same occupancy, gauges republished, and the very
  // next issuance can still hit without refilling.
  EXPECT_EQ(cm.entries(cache::CacheTier::kResult), entries);
  EXPECT_DOUBLE_EQ(system.metrics().gauge("cache.result.entries"),
                   static_cast<double>(entries));

  for (uint32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(system.Search(Q(2, {"cat", "dog"}), 10, false).ok());
  }
  EXPECT_GT(rs.hits, 0u);
  EXPECT_EQ(system.metrics().counter("cache.result.hits"), rs.hits);
  EXPECT_EQ(system.metrics().counter("cache.result.lookups"), rs.lookups);
}

// ClearMetrics wipes every view at once and restores the membership
// gauges, so post-clear snapshots stay truthful.
TEST_F(ObsIntegrationTest, ClearMetricsLeavesViewsConsistent) {
  core::SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  ASSERT_TRUE(system.Search(Q(1, {"cat"}), 10).ok());
  system.ClearMetrics();
  EXPECT_EQ(system.metrics().counter("search.queries"), 0u);
  EXPECT_EQ(system.network_stats().TotalMessages(), 0u);
  EXPECT_EQ(system.ring().stats().lookups, 0u);
  EXPECT_DOUBLE_EQ(system.metrics().gauge("peers.alive"), 16.0);
  EXPECT_DOUBLE_EQ(system.metrics().gauge("peers.total"), 16.0);
}

TEST_F(ObsIntegrationTest, ExportLoadMetricsPublishesGaugesAndSkew) {
  core::SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus_).ok());
  ASSERT_TRUE(system.Search(Q(1, {"cat", "dog"}), 10).ok());
  ASSERT_TRUE(system.Search(Q(2, {"cat"}), 10).ok());
  system.ExportLoadMetrics();

  const MetricsRegistry& m = system.metrics();
  EXPECT_GT(m.gauge("load.postings.max"), 0.0);
  EXPECT_GT(m.gauge("load.postings.mean"), 0.0);
  EXPECT_GE(m.gauge("load.postings.max_mean_ratio"), 1.0);
  EXPECT_GE(m.gauge("load.postings.gini"), 0.0);
  EXPECT_GT(m.gauge("load.queries.max"), 0.0);
  EXPECT_GE(m.gauge("load.queries.max_mean_ratio"), 1.0);

  // Per-peer gauges are labeled peer-<id>.
  MetricsSnapshot snap = m.Snapshot();
  size_t labeled = 0;
  for (const GaugeSample& g : snap.gauges) {
    if (g.id.name == "load.postings" && !g.id.label.empty()) ++labeled;
  }
  EXPECT_GT(labeled, 0u);
}

}  // namespace
}  // namespace sprite::obs
