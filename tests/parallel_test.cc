// Tests for the sharded epoch engine (DESIGN.md §12) and the
// determinism-hardening fixes that support it: the (peer, seq)-ordered
// inbound queues, the worker pool barrier, per-stream RNG substreams, the
// thread-safe term dictionary, pinned iteration orders, and — the headline
// contract — byte-identical simulation output at any thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/worker_pool.h"
#include "core/indexing_peer.h"
#include "eval/experiment.h"
#include "p2p/epoch_queue.h"
#include "text/term_dict.h"

namespace sprite {
namespace {

using core::IndexingPeer;
using core::PostingEntry;
using core::SpriteConfig;
using core::SpriteSystem;
using eval::ExperimentOptions;
using eval::TestBed;
using text::TermDict;

// --- EpochQueue ---------------------------------------------------------

TEST(EpochQueueTest, DrainsInPeerSeqOrder) {
  p2p::EpochQueue<int> queue;
  // Push in a deliberately scrambled order, from several threads.
  const std::vector<std::pair<uint64_t, uint64_t>> pushes = {
      {7, 3}, {2, 9}, {7, 1}, {2, 2}, {40, 5}, {2, 7}, {7, 2}, {40, 1},
  };
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&queue, &pushes, t]() {
      for (size_t i = t; i < pushes.size(); i += 4) {
        queue.Push(pushes[i].first, pushes[i].second,
                   static_cast<int>(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(queue.size(), pushes.size());

  std::vector<std::pair<uint64_t, uint64_t>> drained;
  queue.DrainInOrder([&](p2p::EpochQueue<int>::Message& m) {
    drained.push_back({m.peer, m.seq});
  });
  const std::vector<std::pair<uint64_t, uint64_t>> want = {
      {2, 2}, {2, 7}, {2, 9}, {7, 1}, {7, 2}, {7, 3}, {40, 1}, {40, 5},
  };
  EXPECT_EQ(drained, want);
  // The queue is reusable after a drain.
  EXPECT_EQ(queue.size(), 0u);
  queue.Push(1, 1, 0);
  EXPECT_EQ(queue.size(), 1u);
}

// --- WorkerPool ---------------------------------------------------------

TEST(WorkerPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  for (size_t num_threads : {size_t{1}, size_t{4}}) {
    WorkerPool pool(num_threads);
    EXPECT_EQ(pool.num_threads(), num_threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
    // Degenerate sizes are fine.
    pool.ParallelFor(0, [&](size_t) { FAIL(); });
    std::atomic<int> one{0};
    pool.ParallelFor(1, [&](size_t) { one.fetch_add(1); });
    EXPECT_EQ(one.load(), 1);
  }
}

TEST(WorkerPoolTest, ParallelForIsABarrier) {
  WorkerPool pool(4);
  std::atomic<size_t> done{0};
  pool.ParallelFor(64, [&](size_t) { done.fetch_add(1); });
  // Every unit observed complete once ParallelFor returned.
  EXPECT_EQ(done.load(), 64u);
}

TEST(WorkerPoolTest, ZeroThreadsClampsToOne) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> hits{0};
  pool.ParallelFor(7, [&](size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 7);
  const WorkerPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.threads, 1u);
  ASSERT_EQ(stats.workers.size(), 1u);
  EXPECT_EQ(stats.workers[0].items, 7u);
}

TEST(WorkerPoolTest, StatsTrackInlineAndFannedOutBatches) {
  WorkerPool pool(4);

  // n == 0 is a complete no-op, including for the stats.
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  WorkerPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.inline_batches, 0u);
  EXPECT_EQ(stats.items, 0u);

  // n == 1 takes the inline path: only the caller slot is charged.
  pool.ParallelFor(1, [](size_t) {});
  stats = pool.stats();
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.inline_batches, 1u);
  EXPECT_EQ(stats.items, 1u);
  ASSERT_EQ(stats.workers.size(), 4u);
  EXPECT_EQ(stats.workers[0].items, 1u);
  EXPECT_EQ(stats.workers[0].batches, 1u);
  EXPECT_EQ(stats.workers[1].items, 0u);

  // A fanned-out batch accounts every item to some worker and computes a
  // finite imbalance ratio >= 1 (max busy over mean busy). The work spins
  // long enough that at least one worker's busy time is nonzero on any
  // clock resolution.
  std::atomic<uint64_t> sink{0};
  const auto spin = [&sink](size_t i) {
    uint64_t acc = i;
    for (int k = 0; k < 500; ++k) acc = acc * 6364136223846793005ull + 13u;
    sink.fetch_add(acc, std::memory_order_relaxed);
  };
  pool.ParallelFor(256, spin);
  stats = pool.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.inline_batches, 1u);
  EXPECT_EQ(stats.items, 257u);
  uint64_t claimed = 0;
  for (const WorkerPool::WorkerStats& w : stats.workers) claimed += w.items;
  EXPECT_EQ(claimed, 257u);
  EXPECT_GE(stats.last_imbalance, 1.0);
  EXPECT_GE(stats.max_imbalance, stats.last_imbalance);
  EXPECT_GT(stats.MeanImbalance(), 0.0);

  // Stats accumulate across batches...
  pool.ParallelFor(256, spin);
  stats = pool.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.items, 513u);

  // ...and ResetStats zeroes the counters but keeps the pool geometry.
  pool.ResetStats();
  stats = pool.stats();
  EXPECT_EQ(stats.threads, 4u);
  ASSERT_EQ(stats.workers.size(), 4u);
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.inline_batches, 0u);
  EXPECT_EQ(stats.items, 0u);
  EXPECT_EQ(stats.workers[0].busy_ns, 0u);
  EXPECT_EQ(stats.workers[0].items, 0u);
  EXPECT_EQ(stats.last_imbalance, 0.0);
  EXPECT_EQ(stats.max_imbalance, 0.0);
  pool.ParallelFor(16, [](size_t) {});
  EXPECT_EQ(pool.stats().items, 16u);
}

// --- Rng substreams -----------------------------------------------------

TEST(RngStreamTest, StreamDrawsIgnoreOtherStreams) {
  // Stream 5's sequence is a pure function of (seed, 5): drawing from other
  // streams first — in any order, on any schedule — cannot perturb it.
  Rng direct = Rng::ForStream(99, 5);
  std::vector<uint64_t> want;
  for (int i = 0; i < 8; ++i) want.push_back(direct.NextUint64());

  RngPool pool(99);
  pool.ForStream(2).NextUint64();
  pool.ForStream(7).NextDouble();
  pool.ForStream(5);  // materialize, draw nothing yet
  pool.ForStream(2).NextGaussian();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(pool.ForStream(5).NextUint64(), want[i]);
  }
}

TEST(RngStreamTest, DistinctStreamsDiverge) {
  Rng a = Rng::ForStream(1, 0);
  Rng b = Rng::ForStream(1, 1);
  Rng c = Rng::ForStream(2, 0);
  const uint64_t va = a.NextUint64(), vb = b.NextUint64(),
                 vc = c.NextUint64();
  EXPECT_NE(va, vb);
  EXPECT_NE(va, vc);
}

// --- TermDict thread safety ---------------------------------------------

TEST(TermDictParallelTest, SequentialInsertionOrderFixesIds) {
  TermDict a, b;
  std::vector<std::string> terms;
  for (int i = 0; i < 500; ++i) terms.push_back(StrFormat("term-%d", i));
  for (const std::string& t : terms) a.Intern(t);
  for (const std::string& t : terms) {
    EXPECT_EQ(b.Intern(t), a.Lookup(t));
  }
}

TEST(TermDictParallelTest, ConcurrentReadersSeeStableEntries) {
  TermDict dict;
  // One writer interning fresh terms while readers resolve already-interned
  // ids; under TSan this doubles as the data-race check.
  constexpr int kTerms = 2000;
  std::vector<text::TermId> ids(kTerms);
  for (int i = 0; i < 200; ++i) {
    ids[i] = dict.Intern(StrFormat("seed-%d", i));
  }
  std::atomic<int> published{200};
  std::thread writer([&]() {
    for (int i = 200; i < kTerms; ++i) {
      ids[i] = dict.Intern(StrFormat("seed-%d", i));
      published.store(i + 1, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&]() {
      for (int round = 0; round < 50; ++round) {
        const int limit = published.load(std::memory_order_acquire);
        for (int i = 0; i < limit; ++i) {
          EXPECT_EQ(dict.TermOf(ids[i]), StrFormat("seed-%d", i));
          EXPECT_EQ(dict.Lookup(StrFormat("seed-%d", i)), ids[i]);
        }
      }
    });
  }
  writer.join();
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(dict.size(), static_cast<size_t>(kTerms));
}

TEST(TermDictParallelTest, ConcurrentInternsAgreeOnOneIdPerTerm) {
  TermDict dict;
  constexpr int kTerms = 512;
  std::vector<std::vector<text::TermId>> seen(4,
                                              std::vector<text::TermId>(kTerms));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&dict, &seen, t]() {
      for (int i = 0; i < kTerms; ++i) {
        seen[t][i] = dict.Intern(StrFormat("shared-%d", i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(dict.size(), static_cast<size_t>(kTerms));
  for (int i = 0; i < kTerms; ++i) {
    for (int t = 1; t < 4; ++t) ASSERT_EQ(seen[t][i], seen[0][i]);
    EXPECT_EQ(dict.TermOf(seen[0][i]), StrFormat("shared-%d", i));
  }
}

// --- Pinned iteration orders --------------------------------------------

TEST(IndexingPeerOrderTest, IndexedTermsAreSortedById) {
  IndexingPeer peer(1, 16);
  for (text::TermId id : {40u, 3u, 99u, 7u, 23u}) {
    peer.AddPosting(id, PostingEntry{/*doc=*/id, /*tf=*/1, 10, 5, 0});
  }
  const std::vector<text::TermId> want = {3, 7, 23, 40, 99};
  EXPECT_EQ(peer.IndexedTerms(), want);
}

TEST(IndexingPeerOrderTest, ExtractEntriesHandsOffSortedLists) {
  IndexingPeer peer(1, 16);
  for (text::TermId id : {50u, 2u, 31u, 17u, 8u}) {
    peer.AddPosting(id, PostingEntry{/*doc=*/100 + id, /*tf=*/1, 10, 5, 0});
  }
  IndexingPeer::Handoff handoff =
      peer.ExtractEntries([](text::TermId id) { return id != 17u; });
  std::vector<text::TermId> moved;
  for (const auto& [term, list] : handoff.lists) moved.push_back(term);
  const std::vector<text::TermId> want = {2, 8, 31, 50};
  EXPECT_EQ(moved, want);
  EXPECT_EQ(peer.IndexedTerms(), std::vector<text::TermId>{17});
}

// --- Cross-thread determinism -------------------------------------------

ExperimentOptions SmallExperiment() {
  ExperimentOptions o;
  o.corpus.seed = 7;
  o.corpus.num_topics = 6;
  o.corpus.num_base_queries = 18;
  o.corpus.num_docs = 600;
  o.corpus.query_min_terms = 3;
  o.generator.rank_cutoff = 40;
  return o;
}

class EpochDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bed_ = new TestBed(TestBed::Build(SmallExperiment()));
  }
  static void TearDownTestSuite() {
    delete bed_;
    bed_ = nullptr;
  }
  static TestBed* bed_;
};

TestBed* EpochDeterminismTest::bed_ = nullptr;

// Serializes ranked lists with exact double bit patterns, so two runs agree
// iff every score is bit-identical.
std::string DumpResults(const std::vector<StatusOr<ir::RankedList>>& results) {
  std::string out;
  for (const auto& r : results) {
    if (!r.ok()) {
      out += "err:" + r.status().ToString() + "\n";
      continue;
    }
    for (const auto& scored : r.value()) {
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(scored.score));
      std::memcpy(&bits, &scored.score, sizeof(bits));
      out += StrFormat("%u:%llx ", scored.doc,
                       static_cast<unsigned long long>(bits));
    }
    out += "\n";
  }
  return out;
}

struct ScenarioDump {
  std::string results;
  std::string metrics;
  std::string trace;
  std::string timeseries;
  std::string perf;  // wall-profiler snapshot; sidecar-only, never compared
};

// A fig4a-style workload with churn and the querying-peer caches enabled —
// every epoch entry point, the learning loop, replication, heartbeats, and
// membership changes all run. Everything observable is captured.
// `profile` turns on the host-side wall profiler (DESIGN.md §13), which by
// contract must not change a single observable byte.
// `poke_live_seams` explicitly sets the tracer's live-daemon seams to
// their sim defaults (SimClock time source, zero id salt) — the pointer
// indirection those seams add must not change a single observable byte.
ScenarioDump RunScenario(const TestBed& bed, size_t threads,
                         bool profile = false, bool poke_live_seams = false) {
  SpriteConfig config;
  config.num_peers = 48;
  config.initial_terms = 5;
  config.terms_per_iteration = 5;
  config.max_index_terms = 20;
  config.enable_result_cache = true;
  config.enable_posting_cache = true;
  config.cache_validate = true;
  config.enable_timeseries = true;
  config.replication_factor = 2;
  config.seed = 11;
  config.num_threads = threads;
  config.enable_wall_profiler = profile;

  SpriteSystem sys(config);
  sys.mutable_tracer().set_enabled(true);
  if (poke_live_seams) {
    sys.mutable_tracer().set_time_source(nullptr);
    sys.mutable_tracer().set_id_salt(0);
  }

  EXPECT_TRUE(eval::TrainSystem(sys, bed, bed.split().train, 2).ok());
  sys.ReplicateIndexes();
  sys.CaptureTimeSeriesPoint("trained");

  // Churn: fail two peers, heal, admit newcomers, keep learning.
  std::vector<uint64_t> ids = sys.ring().AliveIds();
  EXPECT_TRUE(sys.FailPeer(ids[ids.size() / 3]).ok());
  EXPECT_TRUE(sys.FailPeer(ids[(2 * ids.size()) / 3]).ok());
  sys.StabilizeNetwork(3);
  sys.RunHeartbeats();
  EXPECT_TRUE(sys.JoinPeer("newcomer-a").ok());
  EXPECT_TRUE(sys.JoinPeer("newcomer-b").ok());
  sys.RunLearningIteration();
  sys.ReplicateIndexes();
  sys.CaptureTimeSeriesPoint("churned");

  // Evaluate twice so the second pass exercises cache hits + validation.
  std::vector<const corpus::Query*> queries;
  for (size_t idx : bed.split().test) queries.push_back(&bed.query(idx));
  ScenarioDump dump;
  dump.results += DumpResults(sys.SearchEpoch(queries, 20, /*record=*/false));
  dump.results += DumpResults(sys.SearchEpoch(queries, 20, /*record=*/false));
  sys.CaptureTimeSeriesPoint("evaluated");

  dump.metrics = sys.metrics().Snapshot().ToJson();
  dump.trace = sys.tracer().ToJsonl();
  dump.timeseries = sys.timeseries().ToCsv();
  dump.perf = sys.profiler().Snapshot().ToJson();
  return dump;
}

TEST_F(EpochDeterminismTest, ThreadCountDoesNotChangeAnyObservableByte) {
  const ScenarioDump one = RunScenario(*bed_, 1);
  const ScenarioDump four = RunScenario(*bed_, 4);
  // Compare sizes first for a readable failure, then the full bytes.
  ASSERT_EQ(one.results.size(), four.results.size());
  EXPECT_EQ(one.results, four.results);
  EXPECT_EQ(one.metrics, four.metrics);
  EXPECT_EQ(one.trace, four.trace);
  EXPECT_EQ(one.timeseries, four.timeseries);
  // The dumps are non-trivial: the scenario really ran.
  EXPECT_GT(one.results.size(), 100u);
  EXPECT_NE(one.metrics.find("learning.iterations"), std::string::npos);
  EXPECT_NE(one.timeseries.find("churned"), std::string::npos);
}

TEST_F(EpochDeterminismTest, RepeatedRunsAtSameThreadCountAgree) {
  const ScenarioDump a = RunScenario(*bed_, 2);
  const ScenarioDump b = RunScenario(*bed_, 2);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.timeseries, b.timeseries);
}

// The hard observability contract (DESIGN.md §13): the wall profiler sits
// entirely outside the simulated-clock streams, so turning it on changes
// no observable byte — while the profiler itself demonstrably recorded.
TEST_F(EpochDeterminismTest, WallProfilingDoesNotChangeAnyObservableByte) {
  const ScenarioDump off = RunScenario(*bed_, 2, /*profile=*/false);
  const ScenarioDump on = RunScenario(*bed_, 2, /*profile=*/true);
  EXPECT_EQ(off.results, on.results);
  EXPECT_EQ(off.metrics, on.metrics);
  EXPECT_EQ(off.trace, on.trace);
  EXPECT_EQ(off.timeseries, on.timeseries);
  // The profiled run collected wall samples; the unprofiled one collected
  // none. Only the sidecar snapshot differs.
  EXPECT_NE(on.perf.find("perf.epoch.share.plan_us"), std::string::npos);
  EXPECT_NE(on.perf.find("perf.search.total_us"), std::string::npos);
  EXPECT_EQ(off.perf.find("perf."), std::string::npos);
}

// The live-tracing seams (DESIGN.md §16) ship compiled into the sim build:
// a swappable TraceClock and a 32-bit id salt. At their defaults they must
// be invisible — same bytes in every dump, traced ids still sequential.
TEST_F(EpochDeterminismTest, LiveTracingSeamsLeaveSimDumpsByteIdentical) {
  const ScenarioDump plain = RunScenario(*bed_, 2);
  const ScenarioDump poked =
      RunScenario(*bed_, 2, /*profile=*/false, /*poke_live_seams=*/true);
  EXPECT_EQ(plain.results, poked.results);
  EXPECT_EQ(plain.metrics, poked.metrics);
  EXPECT_EQ(plain.trace, poked.trace);
  EXPECT_EQ(plain.timeseries, poked.timeseries);
  EXPECT_NE(plain.trace.find("\"trace\":1,"), std::string::npos);
}

}  // namespace
}  // namespace sprite
