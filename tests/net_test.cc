// Transport-subsystem tests (ISSUE 8): SimTransport's cost-model seam
// (legacy-identical accounting, typed unreachable-peer statuses, the
// retry/backoff knobs), the frame-level sim bus, and a three-node
// in-process ClusterNode cluster whose join/publish/record/learn/search
// life cycle must reproduce the simulation's rankings bit for bit — the
// in-process twin of the multi-process daemon smoke in tools/ci.sh.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sprite_system.h"
#include "corpus/corpus.h"
#include "corpus/query.h"
#include "net/cluster.h"
#include "net/sim_transport.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "p2p/network.h"
#include "text/analyzer.h"

namespace sprite::net {
namespace {

using p2p::MessageType;

// --- SimTransport: the cost-model seam --------------------------------------

struct CostFixture {
  SimTransport bus;
  p2p::NetworkAccountant net;
  double clock_ms = 0.0;
  bool peer_up = true;

  CostFixture() {
    bus.ConfigureCostModel(
        &net, [this](p2p::PeerId) { return peer_up; },
        [this](double ms) { clock_ms += ms; });
  }
};

TEST(SimTransportCostTest, AliveSendChargesLegacyBytes) {
  CostFixture f;
  const Status sent =
      f.bus.CostSend(7, MessageType::kPublishTerm, 44, CallOptions{});
  EXPECT_TRUE(sent.ok());
  // Exactly what NetworkAccountant::Count(type, 44) has always booked.
  EXPECT_EQ(f.net.stats().MessagesOf(MessageType::kPublishTerm), 1u);
  EXPECT_EQ(f.net.stats().BytesOf(MessageType::kPublishTerm),
            p2p::kMessageHeaderBytes + 44);
  // The transport-layer mirror agrees and sees no failures.
  EXPECT_EQ(f.bus.stats().FramesOf(MessageType::kPublishTerm), 1u);
  EXPECT_EQ(f.bus.stats().BytesOf(MessageType::kPublishTerm),
            p2p::kMessageHeaderBytes + 44);
  EXPECT_EQ(f.bus.stats().TotalTimeouts(), 0u);
  EXPECT_EQ(f.bus.stats().TotalRetries(), 0u);
  EXPECT_EQ(f.clock_ms, 0.0);
}

TEST(SimTransportCostTest, DeadSendDefaultsMatchLegacyAccounting) {
  // The invariant that keeps every sim dump byte-identical: with the
  // default retries = 0 an unreachable peer costs exactly one request and
  // no response — plus, new with the transport, a typed status and a
  // timeout counter the accountant could never express.
  CostFixture f;
  f.peer_up = false;
  const Status sent =
      f.bus.CostSend(7, MessageType::kVersionCheck, 20, CallOptions{});
  ASSERT_FALSE(sent.ok());
  EXPECT_TRUE(sent.IsDeadlineExceeded());
  EXPECT_EQ(sent.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(f.net.stats().MessagesOf(MessageType::kVersionCheck), 1u);
  EXPECT_EQ(f.net.stats().BytesOf(MessageType::kVersionCheck),
            p2p::kMessageHeaderBytes + 20);
  EXPECT_EQ(f.bus.stats().TimeoutsOf(MessageType::kVersionCheck), 1u);
  EXPECT_EQ(f.bus.stats().RetriesOf(MessageType::kVersionCheck), 0u);
  EXPECT_EQ(f.clock_ms, 0.0);  // no retries, no backoff waits
}

TEST(SimTransportCostTest, DeadSendRetriesChargeEveryAttempt) {
  CostFixture f;
  f.peer_up = false;
  CallOptions opts;
  opts.retries = 2;
  opts.backoff_ms = 200.0;
  const Status sent =
      f.bus.CostSend(7, MessageType::kVersionCheck, 20, opts);
  ASSERT_TRUE(sent.IsDeadlineExceeded());
  // Three request legs hit the wire (1 + 2 retries), each fully charged.
  EXPECT_EQ(f.net.stats().MessagesOf(MessageType::kVersionCheck), 3u);
  EXPECT_EQ(f.net.stats().BytesOf(MessageType::kVersionCheck),
            3 * (p2p::kMessageHeaderBytes + 20));
  EXPECT_EQ(f.bus.stats().FramesOf(MessageType::kVersionCheck), 3u);
  EXPECT_EQ(f.bus.stats().RetriesOf(MessageType::kVersionCheck), 2u);
  EXPECT_EQ(f.bus.stats().TimeoutsOf(MessageType::kVersionCheck), 1u);
  // Exponential backoff advanced the simulated clock: 200 + 400 ms.
  EXPECT_EQ(f.clock_ms, 600.0);
}

TEST(SimTransportCostTest, ExchangeChargesBothLegs) {
  CostFixture f;
  const Status sent =
      f.bus.BeginExchange(3, MessageType::kVersionCheck, 20, CallOptions{});
  ASSERT_TRUE(sent.ok());
  f.bus.CompleteExchange(MessageType::kVersionCheck, p2p::kVersionBytes);
  EXPECT_EQ(f.net.stats().MessagesOf(MessageType::kVersionCheck), 2u);
  EXPECT_EQ(f.net.stats().BytesOf(MessageType::kVersionCheck),
            (p2p::kMessageHeaderBytes + 20) +
                (p2p::kMessageHeaderBytes + p2p::kVersionBytes));
}

// --- SimTransport: the frame-level bus --------------------------------------

TEST(SimTransportFrameTest, CallDeliversFramesAndCountsBothLegs) {
  SimTransport bus;
  wire::Frame seen;
  bus.Register(5, [&](const wire::Frame& f) -> StatusOr<wire::Frame> {
    seen = f;
    wire::Advisory reply;
    reply.term = "abcdefghij";
    reply.indexed_df = 3;
    return wire::ToFrame(reply);
  });
  wire::Heartbeat probe;
  probe.term = "abcdefghij";
  probe.doc = 9;
  wire::Frame request = wire::ToFrame(probe);
  PeerAddress to;
  to.id = 5;
  StatusOr<wire::Frame> response = bus.Call(to, request, CallOptions{});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(seen.type, MessageType::kHeartbeat);
  EXPECT_EQ(response->type, MessageType::kAdvisory);
  EXPECT_EQ(bus.stats().FramesOf(MessageType::kHeartbeat), 1u);
  EXPECT_EQ(bus.stats().FramesOf(MessageType::kAdvisory), 1u);
  EXPECT_EQ(bus.stats().BytesOf(MessageType::kHeartbeat),
            request.wire_size());
}

TEST(SimTransportFrameTest, DownPeerSurfacesTypedTimeout) {
  SimTransport bus;
  bus.Register(5, [](const wire::Frame& f) -> StatusOr<wire::Frame> {
    return f;  // echo
  });
  bus.SetDown(5, true);
  wire::Heartbeat probe;
  probe.term = "abcdefghij";
  wire::Frame request = wire::ToFrame(probe);
  PeerAddress to;
  to.id = 5;
  CallOptions opts;
  opts.retries = 1;
  StatusOr<wire::Frame> response = bus.Call(to, request, opts);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsDeadlineExceeded());
  EXPECT_EQ(bus.stats().FramesOf(MessageType::kHeartbeat), 2u);
  EXPECT_EQ(bus.stats().RetriesOf(MessageType::kHeartbeat), 1u);
  EXPECT_EQ(bus.stats().TimeoutsOf(MessageType::kHeartbeat), 1u);
  // The partition heals: the same peer answers again.
  bus.SetDown(5, false);
  EXPECT_TRUE(bus.Call(to, request, opts).ok());
}

TEST(SimTransportFrameTest, SendToUnregisteredPeerReportsLoss) {
  SimTransport bus;
  wire::Heartbeat probe;
  probe.term = "abcdefghij";
  PeerAddress to;
  to.id = 99;
  const Status sent = bus.Send(to, wire::ToFrame(probe), CallOptions{});
  EXPECT_TRUE(sent.IsDeadlineExceeded());
  EXPECT_EQ(bus.stats().FramesOf(MessageType::kHeartbeat), 1u);
}

// --- ClusterNode: in-process three-node cluster -----------------------------

const char* const kDocs[][2] = {
    {"Distributed hash tables",
     "distributed hash table routing protocols scale lookup chord pastry "
     "peer structured overlay routing lookup"},
    {"Text retrieval systems",
     "text retrieval ranking relevance vector model cosine similarity "
     "document term weighting retrieval ranking"},
    {"Peer to peer search",
     "peer search network overlay gnutella flooding query distributed "
     "search peer network"},
    {"Machine learning basics",
     "machine learning model training gradient feature weight learning "
     "model training data"},
    {"Information retrieval evaluation",
     "information retrieval evaluation precision recall benchmark trec "
     "judgment relevance evaluation precision"},
    {"Query driven learning",
     "query learning feedback cached history adaptive index term selection "
     "query feedback learning"}};

const char* const kQueries[] = {
    "distributed hash table lookup", "text retrieval ranking",
    "peer network search", "query learning feedback"};

class ClusterFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* name : {"n0", "n1", "n2"}) {
      nodes_.push_back(std::make_unique<ClusterNode>(
          ClusterOptions{name, config_}, &bus_));
    }
    for (auto& node : nodes_) {
      ClusterNode* raw = node.get();
      bus_.Register(raw->self().id, [raw](const wire::Frame& f) {
        return raw->HandleFrame(f);
      });
    }
    PeerAddress bootstrap;
    bootstrap.id = nodes_[0]->self().id;
    ASSERT_TRUE(nodes_[1]->Join(bootstrap).ok());
    ASSERT_TRUE(nodes_[2]->Join(bootstrap).ok());
  }

  std::vector<std::string> Terms(const std::string& raw) const {
    return analyzer_.Analyze(raw);
  }

  core::SpriteConfig config_;
  SimTransport bus_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;
  text::Analyzer analyzer_;
};

TEST_F(ClusterFixture, JoinBuildsAConsistentFullView) {
  for (const auto& node : nodes_) {
    ASSERT_EQ(node->members().size(), 3u);
    // Sorted by ring id, and every node sees the same view.
    for (size_t i = 0; i + 1 < node->members().size(); ++i) {
      EXPECT_LT(node->members()[i].id, node->members()[i + 1].id);
    }
    for (size_t i = 0; i < node->members().size(); ++i) {
      EXPECT_EQ(node->members()[i].id, nodes_[0]->members()[i].id);
      EXPECT_EQ(node->members()[i].name, nodes_[0]->members()[i].name);
    }
  }
  // Key ownership is a pure function of the shared view: all nodes agree.
  for (const char* term : {"chord", "retrieval", "gradient", "recall"}) {
    const uint64_t key = nodes_[0]->KeyOfTerm(term);
    const uint64_t owner = nodes_[0]->OwnerOfKey(key).id;
    EXPECT_EQ(nodes_[1]->OwnerOfKey(key).id, owner);
    EXPECT_EQ(nodes_[2]->OwnerOfKey(key).id, owner);
  }
}

TEST_F(ClusterFixture, LifecycleMatchesSimulationBitForBit) {
  // The same workload drives the cluster and a reference SpriteSystem in
  // the training order of eval::TrainSystem (record -> share -> learn);
  // ranked lists must match score-for-score. This is the in-process twin
  // of the ci.sh multi-process smoke.
  constexpr size_t kTrainReps = 3;
  constexpr size_t kIterations = 2;
  constexpr size_t kTopK = 10;

  std::vector<corpus::Query> queries;
  for (size_t i = 0; i < std::size(kQueries); ++i) {
    queries.push_back(corpus::Query{static_cast<corpus::QueryId>(i + 1),
                                    corpus::DedupTerms(Terms(kQueries[i]))});
  }

  // Reference simulation over the identically analyzed corpus.
  corpus::Corpus corpus;
  for (const auto& doc : kDocs) {
    corpus.AddDocument(analyzer_.AnalyzeToVector(doc[1]), doc[0]);
  }
  core::SpriteSystem sim(config_);
  std::vector<const corpus::Query*> stream;
  for (size_t rep = 0; rep < kTrainReps; ++rep) {
    for (const corpus::Query& q : queries) stream.push_back(&q);
  }
  sim.RecordQueryEpoch(stream);
  ASSERT_TRUE(sim.ShareCorpus(corpus).ok());
  for (size_t i = 0; i < kIterations; ++i) sim.RunLearningIteration();

  // The cluster: node 0 issues the training queries, documents are shared
  // round-robin across the three nodes, every node runs its own learning
  // iterations (each node only retunes the documents it owns).
  for (size_t rep = 0; rep < kTrainReps; ++rep) {
    for (size_t i = 0; i < std::size(kQueries); ++i) {
      ASSERT_TRUE(nodes_[0]->RecordQuery(Terms(kQueries[i])).ok());
    }
  }
  for (size_t i = 0; i < std::size(kDocs); ++i) {
    ASSERT_TRUE(nodes_[i % 3]
                    ->ShareDocument(static_cast<corpus::DocId>(i),
                                    kDocs[i][0], kDocs[i][1])
                    .ok());
  }
  for (size_t iter = 0; iter < kIterations; ++iter) {
    for (auto& node : nodes_) ASSERT_TRUE(node->RunLearningIteration().ok());
  }

  size_t documents = 0, indexed_terms = 0, postings = 0;
  for (const auto& node : nodes_) {
    const ClusterNode::Stats stats = node->GetStats();
    EXPECT_EQ(stats.members, 3u);
    documents += stats.documents;
    indexed_terms += stats.indexed_terms;
    postings += stats.postings;
  }
  EXPECT_EQ(documents, std::size(kDocs));
  EXPECT_GT(indexed_terms, 0u);
  EXPECT_GE(postings, indexed_terms);

  for (size_t i = 0; i < queries.size(); ++i) {
    StatusOr<ir::RankedList> cluster =
        nodes_[0]->Search(Terms(kQueries[i]), kTopK);
    StatusOr<ir::RankedList> reference =
        sim.Search(queries[i], kTopK, /*record=*/false);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    ASSERT_FALSE(reference->empty()) << "query " << i;
    // ScoredDoc operator== compares doubles exactly: same docs, same
    // ranks, bit-identical scores.
    EXPECT_EQ(*cluster, *reference) << "query " << i;
  }
}

TEST_F(ClusterFixture, UnreachableMemberIsSkippedNotFatal) {
  for (size_t i = 0; i < std::size(kDocs); ++i) {
    ASSERT_TRUE(nodes_[i % 3]
                    ->ShareDocument(static_cast<corpus::DocId>(i),
                                    kDocs[i][0], kDocs[i][1])
                    .ok());
  }
  // Find a term whose responsible member is a remote node, then partition
  // that member.
  const uint64_t self_id = nodes_[0]->self().id;
  std::string remote_term;
  uint64_t victim = 0;
  for (const char* term : {"chord", "retrieval", "gradient", "recall",
                           "gnutella", "trec", "feedback"}) {
    const wire::NodeInfo& owner =
        nodes_[0]->OwnerOfKey(nodes_[0]->KeyOfTerm(term));
    if (owner.id != self_id) {
      remote_term = term;
      victim = owner.id;
      break;
    }
  }
  ASSERT_FALSE(remote_term.empty());
  bus_.SetDown(victim, true);

  // skip_unreachable_terms (the default, Section 7's first failure scheme):
  // the dead member's terms drop out, the query itself succeeds.
  StatusOr<ir::RankedList> ranked = nodes_[0]->Search({remote_term}, 10);
  ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
  EXPECT_TRUE(ranked->empty());

  // Recording at a dead member surfaces the typed timeout, not a hang or a
  // generic failure.
  const Status recorded = nodes_[0]->RecordQuery({remote_term});
  EXPECT_TRUE(recorded.IsDeadlineExceeded());
  EXPECT_GT(bus_.stats().TotalTimeouts(), 0u);

  // Learning survives the partition (unreachable members are polled again
  // next round) and search recovers once the member heals.
  for (auto& node : nodes_) EXPECT_TRUE(node->RunLearningIteration().ok());
  bus_.SetDown(victim, false);
  ranked = nodes_[0]->Search({remote_term}, 10);
  ASSERT_TRUE(ranked.ok());
}


// --- Transport RTT histograms (DESIGN.md §16) -------------------------------

TEST(TransportStatsTest, RttMirrorsIntoRegistryAndClearErases) {
  TransportStats stats;
  obs::MetricsRegistry reg;
  stats.AttachMetrics(&reg, /*mirror_traffic=*/true);
  stats.ObserveRtt(MessageType::kQueryRequest, 120.0);
  stats.ObserveRtt(MessageType::kQueryRequest, 80.0);
  stats.ObserveRtt(MessageType::kQueryRequest, -1.0);  // ignored
  EXPECT_EQ(stats.RttCountOf(MessageType::kQueryRequest), 2u);
  EXPECT_DOUBLE_EQ(stats.RttSumUsOf(MessageType::kQueryRequest), 200.0);
  const std::string label(p2p::MessageTypeName(MessageType::kQueryRequest));
  const Histogram* h = reg.histogram("transport.rtt_us", label);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->sum(), 200.0);
  // The §8 reset contract: Clear erases the mirrored histogram too.
  stats.Clear();
  EXPECT_EQ(stats.RttCountOf(MessageType::kQueryRequest), 0u);
  EXPECT_DOUBLE_EQ(stats.RttSumUsOf(MessageType::kQueryRequest), 0.0);
  EXPECT_EQ(reg.histogram("transport.rtt_us", label), nullptr);
}

TEST(TransportStatsTest, SimBackendNeverMirrorsRttWallTime) {
  // mirror_traffic=false is the sim backend's configuration: local RTT
  // arrays may count, but no wall time leaks into the registry dumps.
  TransportStats stats;
  obs::MetricsRegistry reg;
  stats.AttachMetrics(&reg, /*mirror_traffic=*/false);
  stats.ObserveRtt(MessageType::kQueryRequest, 10.0);
  EXPECT_EQ(stats.RttCountOf(MessageType::kQueryRequest), 1u);
  EXPECT_EQ(reg.num_histograms(), 0u);
}

// --- Trace propagation: the sim bus stays byte-clean ------------------------

TEST(SimTransportFrameTest, SimBusFramesCarryNoTraceContext) {
  SimTransport bus;
  wire::Frame seen;
  bus.Register(5, [&](const wire::Frame& f) -> StatusOr<wire::Frame> {
    seen = f;
    return f;
  });
  wire::Heartbeat probe;
  probe.term = "abcdefghij";
  PeerAddress to;
  to.id = 5;
  ASSERT_TRUE(bus.Call(to, wire::ToFrame(probe), CallOptions{}).ok());
  EXPECT_EQ(seen.flags & wire::kFlagTraced, 0);
  EXPECT_FALSE(seen.traced());
  // Encoded, a sim-bus frame keeps the v1 reserved bytes all-zero — the
  // invariant the golden frame dumps rely on.
  const std::vector<uint8_t> bytes = wire::EncodeFrame(seen);
  ASSERT_GE(bytes.size(), wire::kHeaderBytes);
  for (size_t i = 40; i < 48; ++i) {
    EXPECT_EQ(bytes[i], 0) << "reserved byte " << i;
  }
}

// --- Observability attachment: determinism guard (DESIGN.md §16) ------------

struct LifecycleDump {
  std::string results;
  std::string trace;
  std::string metrics;
};

// The ClusterFixture workload with a registry + tracer attached (the live
// daemon's wiring) — but on the sim bus with the tracer's default SimClock
// and zero id salt, so dumps must be deterministic.
LifecycleDump RunObservedLifecycle(bool attach) {
  core::SpriteConfig config;
  SimTransport bus;
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  tracer.set_enabled(attach);
  text::Analyzer analyzer;
  std::vector<std::unique_ptr<ClusterNode>> nodes;
  for (const char* name : {"n0", "n1", "n2"}) {
    nodes.push_back(std::make_unique<ClusterNode>(
        ClusterOptions{name, config}, &bus));
    if (attach) nodes.back()->AttachObservability(&metrics, &tracer);
  }
  for (auto& node : nodes) {
    ClusterNode* raw = node.get();
    bus.Register(raw->self().id, [raw](const wire::Frame& f) {
      return raw->HandleFrame(f);
    });
  }
  PeerAddress bootstrap;
  bootstrap.id = nodes[0]->self().id;
  EXPECT_TRUE(nodes[1]->Join(bootstrap).ok());
  EXPECT_TRUE(nodes[2]->Join(bootstrap).ok());
  for (size_t rep = 0; rep < 2; ++rep) {
    for (const char* q : kQueries) {
      EXPECT_TRUE(nodes[0]->RecordQuery(analyzer.Analyze(q)).ok());
    }
  }
  for (size_t i = 0; i < std::size(kDocs); ++i) {
    EXPECT_TRUE(nodes[i % 3]
                    ->ShareDocument(static_cast<corpus::DocId>(i),
                                    kDocs[i][0], kDocs[i][1])
                    .ok());
  }
  for (auto& node : nodes) EXPECT_TRUE(node->RunLearningIteration().ok());
  LifecycleDump dump;
  for (const char* q : kQueries) {
    StatusOr<ir::RankedList> ranked = nodes[0]->Search(analyzer.Analyze(q), 10);
    EXPECT_TRUE(ranked.ok());
    if (!ranked.ok()) continue;
    for (const auto& scored : *ranked) {
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(scored.score));
      std::memcpy(&bits, &scored.score, sizeof(bits));
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%u:%llx ", scored.doc,
                    static_cast<unsigned long long>(bits));
      dump.results += buf;
    }
    dump.results += "\n";
  }
  dump.trace = tracer.ToJsonl();
  dump.metrics = metrics.Snapshot().ToJson();
  return dump;
}

TEST(ClusterObservabilityTest, AttachingObservabilityChangesNoResultByte) {
  const LifecycleDump off = RunObservedLifecycle(false);
  const LifecycleDump on = RunObservedLifecycle(true);
  ASSERT_GT(off.results.size(), 20u);
  EXPECT_EQ(off.results, on.results);
  // The attached run really traced: the sim span vocabulary appears, so
  // trace_report's phase tables work on live dumps too.
  EXPECT_NE(on.trace.find("\"name\":\"search\""), std::string::npos);
  EXPECT_NE(on.trace.find("\"name\":\"fetch\""), std::string::npos);
  EXPECT_NE(on.trace.find("\"name\":\"rank\""), std::string::npos);
  EXPECT_NE(on.trace.find("\"name\":\"learning.iteration\""),
            std::string::npos);
  EXPECT_NE(on.metrics.find("cluster.searches"), std::string::npos);
}

TEST(ClusterObservabilityTest, ObservedLifecycleDumpsAreByteIdentical) {
  const LifecycleDump a = RunObservedLifecycle(true);
  const LifecycleDump b = RunObservedLifecycle(true);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics, b.metrics);
}

}  // namespace
}  // namespace sprite::net
