// Tests for the TREC-format loaders: SGML documents, topics, and qrels.

#include <string>
#include <unordered_map>

#include <gtest/gtest.h>

#include "corpus/trec.h"

namespace sprite::corpus {
namespace {

constexpr const char* kDocs = R"(
<DOC>
<DOCNO> FT911-1 </DOCNO>
<HEADLINE> Peer to peer systems </HEADLINE>
<TEXT>
Distributed hash tables route lookups across peers.
</TEXT>
</DOC>
<DOC>
<DOCNO> FT911-2 </DOCNO>
<TEXT>
Text retrieval ranks documents with term weighting.
</TEXT>
<TEXT>
A second text block also counts.
</TEXT>
</DOC>
)";

constexpr const char* kTopics = R"(
<top>
<num> Number: 301
<title> distributed hash tables
<desc> Description:
Find documents about routing in DHT networks.
</top>
<top>
<num> Number: 302
<title> term weighting retrieval
</top>
)";

constexpr const char* kQrels =
    "301 0 FT911-1 1\n"
    "301 0 FT911-2 0\n"
    "302 0 FT911-2 2\n"
    "302 0 UNKNOWN-9 1\n"
    "999 0 FT911-1 1\n";

class TrecTest : public ::testing::Test {
 protected:
  TrecTest() {
    auto added =
        LoadTrecDocumentsFromString(kDocs, analyzer_, corpus_, &docno_map_);
    EXPECT_TRUE(added.ok());
    EXPECT_EQ(added.value_or(0), 2u);
    auto topics = ParseTrecTopicsFromString(kTopics);
    EXPECT_TRUE(topics.ok());
    topics_ = topics.value_or(std::vector<TrecTopic>{});
    queries_ = TopicsToQueries(topics_, analyzer_, &query_map_);
  }

  text::Analyzer analyzer_;
  Corpus corpus_;
  std::unordered_map<std::string, DocId> docno_map_;
  std::vector<TrecTopic> topics_;
  std::vector<Query> queries_;
  std::unordered_map<int, QueryId> query_map_;
};

TEST_F(TrecTest, DocumentsParsedWithDocnos) {
  ASSERT_EQ(corpus_.num_docs(), 2u);
  ASSERT_EQ(docno_map_.size(), 2u);
  EXPECT_EQ(corpus_.doc(docno_map_.at("FT911-1")).title, "FT911-1");
  EXPECT_TRUE(corpus_.doc(docno_map_.at("FT911-1")).ContainsTerm("rout"));
  EXPECT_TRUE(corpus_.doc(docno_map_.at("FT911-1")).ContainsTerm("peer"));
}

TEST_F(TrecTest, MultipleTextBlocksConcatenate) {
  const Document& doc = corpus_.doc(docno_map_.at("FT911-2"));
  EXPECT_TRUE(doc.ContainsTerm("retriev"));
  EXPECT_TRUE(doc.ContainsTerm("block"));  // from the second TEXT block
}

TEST_F(TrecTest, HeadlineContributesTerms) {
  const Document& doc = corpus_.doc(docno_map_.at("FT911-1"));
  EXPECT_TRUE(doc.ContainsTerm("system"));  // headline-only word
}

TEST_F(TrecTest, TopicsParsed) {
  ASSERT_EQ(topics_.size(), 2u);
  EXPECT_EQ(topics_[0].number, 301);
  EXPECT_EQ(topics_[0].title, "distributed hash tables");
  EXPECT_NE(topics_[0].description.find("routing"), std::string::npos);
  EXPECT_EQ(topics_[1].number, 302);
  EXPECT_TRUE(topics_[1].description.empty());
}

TEST_F(TrecTest, TopicsBecomeAnalyzedQueries) {
  ASSERT_EQ(queries_.size(), 2u);
  EXPECT_EQ(queries_[0].terms,
            (std::vector<std::string>{"distribut", "hash", "tabl"}));
  EXPECT_EQ(query_map_.at(301), queries_[0].id);
  EXPECT_EQ(query_map_.at(302), queries_[1].id);
}

TEST_F(TrecTest, QrelsResolveAndFilter) {
  RelevanceJudgments judgments;
  auto recorded =
      LoadTrecQrelsFromString(kQrels, docno_map_, query_map_, judgments);
  ASSERT_TRUE(recorded.ok());
  // 301/FT911-1 (rel 1) and 302/FT911-2 (rel 2). Zero-relevance, unknown
  // docno and unknown topic lines are skipped.
  EXPECT_EQ(recorded.value(), 2u);
  EXPECT_TRUE(judgments.IsRelevant(query_map_.at(301),
                                   docno_map_.at("FT911-1")));
  EXPECT_FALSE(judgments.IsRelevant(query_map_.at(301),
                                    docno_map_.at("FT911-2")));
  EXPECT_TRUE(judgments.IsRelevant(query_map_.at(302),
                                   docno_map_.at("FT911-2")));
}

TEST_F(TrecTest, MalformedQrelsRejected) {
  RelevanceJudgments judgments;
  auto recorded = LoadTrecQrelsFromString("301 0 FT911-1\n", docno_map_,
                                          query_map_, judgments);
  ASSERT_FALSE(recorded.ok());
  EXPECT_EQ(recorded.status().code(), StatusCode::kCorruption);
}

TEST(TrecParsingTest, UnterminatedDocIsCorruption) {
  text::Analyzer analyzer;
  Corpus corpus;
  auto r = LoadTrecDocumentsFromString("<DOC><DOCNO>X</DOCNO><TEXT>y</TEXT>",
                                       analyzer, corpus, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(TrecParsingTest, MissingDocnoIsCorruption) {
  text::Analyzer analyzer;
  Corpus corpus;
  auto r = LoadTrecDocumentsFromString("<DOC><TEXT>y</TEXT></DOC>", analyzer,
                                       corpus, nullptr);
  ASSERT_FALSE(r.ok());
}

TEST(TrecParsingTest, LowercaseTagsAccepted) {
  text::Analyzer analyzer;
  Corpus corpus;
  std::unordered_map<std::string, DocId> map;
  auto r = LoadTrecDocumentsFromString(
      "<doc><docno>d1</docno><text>database systems</text></doc>", analyzer,
      corpus, &map);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 1u);
  EXPECT_TRUE(corpus.doc(map.at("d1")).ContainsTerm("databas"));
}

TEST(TrecParsingTest, StopwordOnlyDocumentSkipped) {
  text::Analyzer analyzer;
  Corpus corpus;
  auto r = LoadTrecDocumentsFromString(
      "<DOC><DOCNO>d1</DOCNO><TEXT>the a of is</TEXT></DOC>", analyzer,
      corpus, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0u);
  EXPECT_EQ(corpus.num_docs(), 0u);
}

TEST(TrecParsingTest, EmptyInputYieldsNothing) {
  text::Analyzer analyzer;
  Corpus corpus;
  EXPECT_EQ(LoadTrecDocumentsFromString("", analyzer, corpus, nullptr)
                .value_or(99),
            0u);
  EXPECT_TRUE(ParseTrecTopicsFromString("").value_or(std::vector<TrecTopic>{
                                            TrecTopic{}}).empty());
}

TEST(TrecParsingTest, MissingFilesAreNotFound) {
  text::Analyzer analyzer;
  Corpus corpus;
  EXPECT_TRUE(LoadTrecDocuments("/no/such/file", analyzer, corpus, nullptr)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(LoadTrecTopics("/no/such/file").status().IsNotFound());
  RelevanceJudgments judgments;
  EXPECT_TRUE(LoadTrecQrels("/no/such/file", {}, {}, judgments)
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace sprite::corpus
