// Unit and property tests for the Chord DHT: identifier-space arithmetic,
// ring construction (protocol join vs oracle), routing, hop complexity,
// and churn/repair behaviour.

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dht/chord.h"
#include "dht/id_space.h"

namespace sprite::dht {
namespace {

// ---------------------------------------------------------------- IdSpace

TEST(IdSpaceTest, TruncateMasksToBits) {
  IdSpace s(8);
  EXPECT_EQ(s.Truncate(0x1234), 0x34u);
  EXPECT_EQ(s.mask(), 0xffu);
  EXPECT_EQ(s.bits(), 8);
}

TEST(IdSpaceTest, SixtyFourBitSpace) {
  IdSpace s(64);
  EXPECT_EQ(s.Truncate(~0ULL), ~0ULL);
  EXPECT_EQ(s.Add(~0ULL, 1), 0u);
}

TEST(IdSpaceTest, AddWrapsModulo) {
  IdSpace s(8);
  EXPECT_EQ(s.Add(250, 10), 4u);
  EXPECT_EQ(s.Add(0, 255), 255u);
}

TEST(IdSpaceTest, PowerOfTwo) {
  IdSpace s(8);
  EXPECT_EQ(s.PowerOfTwo(0), 1u);
  EXPECT_EQ(s.PowerOfTwo(7), 128u);
}

TEST(IdSpaceTest, DistanceIsClockwise) {
  IdSpace s(8);
  EXPECT_EQ(s.Distance(10, 20), 10u);
  EXPECT_EQ(s.Distance(20, 10), 246u);
  EXPECT_EQ(s.Distance(5, 5), 0u);
}

TEST(IdSpaceTest, OpenIntervalNoWrap) {
  IdSpace s(8);
  EXPECT_TRUE(s.InOpenInterval(5, 1, 10));
  EXPECT_FALSE(s.InOpenInterval(1, 1, 10));
  EXPECT_FALSE(s.InOpenInterval(10, 1, 10));
  EXPECT_FALSE(s.InOpenInterval(11, 1, 10));
}

TEST(IdSpaceTest, OpenIntervalWrapsZero) {
  IdSpace s(8);
  EXPECT_TRUE(s.InOpenInterval(250, 200, 10));
  EXPECT_TRUE(s.InOpenInterval(5, 200, 10));
  EXPECT_FALSE(s.InOpenInterval(100, 200, 10));
}

TEST(IdSpaceTest, DegenerateOpenIntervalIsAllButEndpoint) {
  IdSpace s(8);
  EXPECT_TRUE(s.InOpenInterval(1, 7, 7));
  EXPECT_FALSE(s.InOpenInterval(7, 7, 7));
}

TEST(IdSpaceTest, HalfOpenInterval) {
  IdSpace s(8);
  EXPECT_TRUE(s.InHalfOpenInterval(10, 1, 10));
  EXPECT_FALSE(s.InHalfOpenInterval(1, 1, 10));
  EXPECT_TRUE(s.InHalfOpenInterval(3, 250, 10));   // wrap
  EXPECT_TRUE(s.InHalfOpenInterval(99, 42, 42));   // single node owns all
}

TEST(IdSpaceTest, KeyForStringIsDeterministicAndInSpace) {
  IdSpace s(16);
  EXPECT_EQ(s.KeyForString("term"), s.KeyForString("term"));
  EXPECT_LE(s.KeyForString("term"), s.mask());
  EXPECT_NE(s.KeyForString("a"), s.KeyForString("b"));
}

// ------------------------------------------------------------- ChordRing

ChordRing MakeRing(size_t n, int bits = 16) {
  ChordRing ring(ChordOptions{bits, 8});
  for (size_t i = 0; i < n; ++i) {
    auto id = ring.Join("node" + std::to_string(i));
    EXPECT_TRUE(id.ok());
  }
  return ring;
}

TEST(ChordRingTest, SingletonOwnsEverything) {
  ChordRing ring;
  auto id = ring.JoinWithId(42, "solo");
  ASSERT_TRUE(id.ok());
  auto res = ring.FindSuccessor(42, 7);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->node, 42u);
  EXPECT_EQ(res->hops, 0);
  auto oracle = ring.ResponsibleNode(7);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(oracle.value(), 42u);
}

TEST(ChordRingTest, JoinWithIdRejectsCollision) {
  ChordRing ring;
  ASSERT_TRUE(ring.JoinWithId(1).ok());
  EXPECT_EQ(ring.JoinWithId(1).status().code(), StatusCode::kAlreadyExists);
}

TEST(ChordRingTest, EmptyRingLookupFails) {
  ChordRing ring;
  EXPECT_FALSE(ring.Lookup(5).ok());
  EXPECT_FALSE(ring.ResponsibleNode(5).ok());
}

TEST(ChordRingTest, TwoNodesSplitTheRing) {
  ChordRing ring(ChordOptions{8, 4});
  ASSERT_TRUE(ring.JoinWithId(10).ok());
  ASSERT_TRUE(ring.JoinWithId(200).ok());
  EXPECT_EQ(ring.ResponsibleNode(5).value(), 10u);
  EXPECT_EQ(ring.ResponsibleNode(10).value(), 10u);
  EXPECT_EQ(ring.ResponsibleNode(11).value(), 200u);
  EXPECT_EQ(ring.ResponsibleNode(200).value(), 200u);
  EXPECT_EQ(ring.ResponsibleNode(201).value(), 10u);  // wraps
}

TEST(ChordRingTest, ProtocolJoinsProduceCorrectSuccessorChain) {
  // Nodes joined one by one via the protocol (no BuildPerfect) must have
  // correct successor pointers.
  ChordRing ring = MakeRing(32);
  std::vector<uint64_t> ids = ring.AliveIds();
  for (size_t i = 0; i < ids.size(); ++i) {
    const ChordNode* n = ring.node(ids[i]);
    EXPECT_EQ(n->successor, ids[(i + 1) % ids.size()]) << "node " << ids[i];
  }
}

TEST(ChordRingTest, ProtocolLookupAgreesWithOracleEverywhere) {
  ChordRing ring = MakeRing(48);
  ring.StabilizeAll(2);
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    const uint64_t key = ring.space().Truncate(rng.NextUint64());
    auto via_protocol = ring.Lookup(key);
    ASSERT_TRUE(via_protocol.ok());
    EXPECT_EQ(via_protocol->node, ring.ResponsibleNode(key).value())
        << "key " << key;
  }
}

TEST(ChordRingTest, BuildPerfectMatchesProtocolTables) {
  // Build one ring via protocol + stabilization and another via the oracle;
  // their routing tables must agree.
  ChordRing protocol_ring = MakeRing(24);
  protocol_ring.StabilizeAll(3);

  ChordRing oracle_ring(ChordOptions{16, 8});
  for (size_t i = 0; i < 24; ++i) {
    ASSERT_TRUE(oracle_ring.Join("node" + std::to_string(i)).ok());
  }
  oracle_ring.BuildPerfect();

  for (uint64_t id : protocol_ring.AliveIds()) {
    const ChordNode* a = protocol_ring.node(id);
    const ChordNode* b = oracle_ring.node(id);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->successor, b->successor) << id;
    EXPECT_EQ(a->fingers, b->fingers) << id;
    ASSERT_TRUE(a->predecessor.has_value());
    EXPECT_EQ(*a->predecessor, *b->predecessor) << id;
  }
}

TEST(ChordRingTest, LookupFromEveryOriginFindsSameOwner) {
  ChordRing ring = MakeRing(16);
  ring.BuildPerfect();
  const uint64_t key = ring.space().KeyForString("shared-key");
  const uint64_t expected = ring.ResponsibleNode(key).value();
  for (uint64_t origin : ring.AliveIds()) {
    auto res = ring.FindSuccessor(origin, key);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->node, expected) << "origin " << origin;
  }
}

TEST(ChordRingTest, KeyEqualToNodeIdBelongsToThatNode) {
  ChordRing ring(ChordOptions{8, 4});
  ASSERT_TRUE(ring.JoinWithId(10).ok());
  ASSERT_TRUE(ring.JoinWithId(100).ok());
  ring.BuildPerfect();
  EXPECT_EQ(ring.FindSuccessor(100, 10)->node, 10u);
  EXPECT_EQ(ring.FindSuccessor(10, 10)->node, 10u);
}

TEST(ChordRingTest, HopCountIsLogarithmic) {
  // Theoretical expectation: ~ (1/2) log2 N hops in a converged ring.
  for (size_t n : {64u, 256u}) {
    ChordRing ring = MakeRing(n, 24);
    ring.BuildPerfect();
    ring.ClearStats();
    Rng rng(1234);
    for (int i = 0; i < 500; ++i) {
      auto res = ring.Lookup(ring.space().Truncate(rng.NextUint64()));
      ASSERT_TRUE(res.ok());
    }
    const double mean_hops = ring.stats().hops.Mean();
    const double log2n = std::log2(static_cast<double>(n));
    EXPECT_GT(mean_hops, 0.25 * log2n) << n;
    EXPECT_LT(mean_hops, 1.25 * log2n) << n;
  }
}

TEST(ChordRingTest, StatsCountLookups) {
  ChordRing ring = MakeRing(8);
  ring.BuildPerfect();
  ring.ClearStats();
  (void)ring.Lookup(123);
  (void)ring.Lookup(456);
  EXPECT_EQ(ring.stats().lookups, 2u);
  EXPECT_EQ(ring.stats().hops.count(), 2u);
}

TEST(ChordRingTest, SuccessorsOfExcludesSelfAndWraps) {
  ChordRing ring(ChordOptions{8, 4});
  for (uint64_t id : {10u, 20u, 30u, 200u}) {
    ASSERT_TRUE(ring.JoinWithId(id).ok());
  }
  auto succs = ring.SuccessorsOf(200, 3);
  EXPECT_EQ(succs, (std::vector<uint64_t>{10, 20, 30}));
  auto two = ring.SuccessorsOf(10, 2);
  EXPECT_EQ(two, (std::vector<uint64_t>{20, 30}));
  // Requesting more than available returns all others.
  auto all = ring.SuccessorsOf(10, 99);
  EXPECT_EQ(all.size(), 3u);
}

TEST(ChordRingTest, FailedNodeIsRoutedAround) {
  ChordRing ring = MakeRing(32);
  ring.BuildPerfect();
  std::vector<uint64_t> ids = ring.AliveIds();
  const uint64_t victim = ids[ids.size() / 2];
  ASSERT_TRUE(ring.Fail(victim).ok());
  EXPECT_EQ(ring.num_alive(), 31u);

  // Keys previously owned by the victim now belong to its successor.
  const uint64_t key = victim;  // the node id itself is such a key
  auto oracle = ring.ResponsibleNode(key);
  ASSERT_TRUE(oracle.ok());
  EXPECT_NE(oracle.value(), victim);

  auto res = ring.Lookup(key);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->node, oracle.value());
}

TEST(ChordRingTest, MassFailureRepairedByStabilization) {
  ChordRing ring = MakeRing(64);
  ring.BuildPerfect();
  std::vector<uint64_t> ids = ring.AliveIds();
  Rng rng(5);
  rng.Shuffle(ids);
  for (size_t i = 0; i < 16; ++i) ASSERT_TRUE(ring.Fail(ids[i]).ok());
  ring.StabilizeAll(3);

  Rng key_rng(77);
  for (int i = 0; i < 200; ++i) {
    const uint64_t key = ring.space().Truncate(key_rng.NextUint64());
    auto res = ring.Lookup(key);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(res->node, ring.ResponsibleNode(key).value());
  }
}

TEST(ChordRingTest, GracefulLeavePatchesNeighbors) {
  ChordRing ring = MakeRing(16);
  ring.BuildPerfect();
  std::vector<uint64_t> ids = ring.AliveIds();
  const uint64_t leaver = ids[5];
  const uint64_t pred = ids[4];
  const uint64_t succ = ids[6];
  ASSERT_TRUE(ring.Leave(leaver).ok());
  EXPECT_EQ(ring.node(pred)->successor, succ);
  ASSERT_TRUE(ring.node(succ)->predecessor.has_value());
  EXPECT_EQ(*ring.node(succ)->predecessor, pred);
}

TEST(ChordRingTest, FailUnknownNodeIsNotFound) {
  ChordRing ring = MakeRing(4);
  EXPECT_TRUE(ring.Fail(0xdeadbeef).IsNotFound());
  std::vector<uint64_t> ids = ring.AliveIds();
  ASSERT_TRUE(ring.Fail(ids[0]).ok());
  EXPECT_TRUE(ring.Fail(ids[0]).IsNotFound());  // already dead
}

TEST(ChordRingTest, LookupFromDeadOriginRejected) {
  ChordRing ring = MakeRing(4);
  ring.BuildPerfect();
  std::vector<uint64_t> ids = ring.AliveIds();
  ASSERT_TRUE(ring.Fail(ids[0]).ok());
  EXPECT_TRUE(ring.FindSuccessor(ids[0], 1).status().IsInvalidArgument());
}

TEST(ChordRingTest, JoinAfterChurnStillCorrect) {
  ChordRing ring = MakeRing(16);
  ring.BuildPerfect();
  std::vector<uint64_t> ids = ring.AliveIds();
  ASSERT_TRUE(ring.Fail(ids[3]).ok());
  ring.StabilizeAll(2);
  ASSERT_TRUE(ring.Join("latecomer").ok());
  ring.StabilizeAll(2);
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    const uint64_t key = ring.space().Truncate(rng.NextUint64());
    auto res = ring.Lookup(key);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->node, ring.ResponsibleNode(key).value());
  }
}

// Parameterized protocol-vs-oracle agreement across ring sizes.
class ChordSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ChordSizeSweep, RoutingMatchesOracle) {
  ChordRing ring = MakeRing(GetParam(), 20);
  ring.StabilizeAll(2);
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const uint64_t key = ring.space().Truncate(rng.NextUint64());
    auto res = ring.Lookup(key);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->node, ring.ResponsibleNode(key).value());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChordSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 17, 33, 100));

}  // namespace
}  // namespace sprite::dht
