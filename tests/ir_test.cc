// Unit tests for src/ir: ranked lists, similarity formulas, the
// centralized baseline index, and precision/recall metrics.

#include <cmath>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "ir/centralized_index.h"
#include "ir/metrics.h"
#include "ir/ranked_list.h"
#include "ir/similarity.h"

namespace sprite::ir {
namespace {

using corpus::DocId;
using corpus::Query;

text::TermVector TV(const std::vector<std::string>& tokens) {
  return text::TermVector::FromTokens(tokens);
}

// -------------------------------------------------------------- RankedList

TEST(RankedListTest, SortsByScoreDescThenDocAsc) {
  RankedList list{{3, 0.5}, {1, 0.9}, {2, 0.5}, {0, 0.1}};
  SortRankedList(list);
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list[0].doc, 1u);
  EXPECT_EQ(list[1].doc, 2u);  // tie at 0.5 -> smaller doc id first
  EXPECT_EQ(list[2].doc, 3u);
  EXPECT_EQ(list[3].doc, 0u);
}

TEST(RankedListTest, TruncatesToK) {
  RankedList list{{1, 3.0}, {2, 2.0}, {3, 1.0}};
  SortRankedList(list, 2);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].doc, 1u);
}

TEST(RankedListTest, ZeroKeepsAll) {
  RankedList list{{1, 3.0}, {2, 2.0}};
  SortRankedList(list, 0);
  EXPECT_EQ(list.size(), 2u);
}

TEST(RankedListTest, FindRank) {
  RankedList list{{5, 3.0}, {7, 2.0}};
  EXPECT_EQ(FindRank(list, 5), 0);
  EXPECT_EQ(FindRank(list, 7), 1);
  EXPECT_EQ(FindRank(list, 9), -1);
}

// -------------------------------------------------------------- Similarity

TEST(SimilarityTest, IdfBasics) {
  EXPECT_DOUBLE_EQ(Idf(1000.0, 1), 3.0);      // log10(1000)
  EXPECT_DOUBLE_EQ(Idf(1000.0, 10), 2.0);
  EXPECT_DOUBLE_EQ(Idf(1000.0, 0), 0.0);      // unseen term
  EXPECT_DOUBLE_EQ(Idf(10.0, 10), 0.0);       // everywhere -> no signal
  EXPECT_DOUBLE_EQ(Idf(10.0, 20), 0.0);       // df > N clamps to 0
}

TEST(SimilarityTest, TfIdfWeight) {
  EXPECT_DOUBLE_EQ(TfIdfWeight(0.5, 1000.0, 10), 1.0);
  EXPECT_DOUBLE_EQ(TfIdfWeight(0.0, 1000.0, 10), 0.0);
}

TEST(SimilarityTest, LeeNormalization) {
  EXPECT_DOUBLE_EQ(LeeNormalize(6.0, 9), 2.0);
  EXPECT_DOUBLE_EQ(LeeNormalize(1.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(LeeNormalize(5.0, 1), 5.0);
}

// -------------------------------------------------------- CentralizedIndex

class CentralizedIndexTest : public ::testing::Test {
 protected:
  CentralizedIndexTest() {
    // doc0 is about cats, doc1 about dogs, doc2 mixed, doc3 unrelated.
    corpus_.AddDocument(TV({"cat", "cat", "cat", "pet"}));
    corpus_.AddDocument(TV({"dog", "dog", "pet", "leash"}));
    corpus_.AddDocument(TV({"cat", "dog", "pet", "vet"}));
    corpus_.AddDocument(TV({"car", "road", "fuel"}));
    index_ = std::make_unique<CentralizedIndex>(corpus_);
  }

  corpus::Corpus corpus_;
  std::unique_ptr<CentralizedIndex> index_;
};

TEST_F(CentralizedIndexTest, ExactDocFreq) {
  EXPECT_EQ(index_->DocFreq("cat"), 2u);
  EXPECT_EQ(index_->DocFreq("pet"), 3u);
  EXPECT_EQ(index_->DocFreq("car"), 1u);
  EXPECT_EQ(index_->DocFreq("nothing"), 0u);
  EXPECT_EQ(index_->num_docs(), 4u);
}

TEST_F(CentralizedIndexTest, SingleTermQueryRanksByTf) {
  RankedList r = index_->Search(Query{0, {"cat"}}, 10);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].doc, 0u);  // three cats beats one cat
  EXPECT_EQ(r[1].doc, 2u);
  EXPECT_GT(r[0].score, r[1].score);
}

TEST_F(CentralizedIndexTest, MultiTermQueryFindsUnionScoredByOverlap) {
  RankedList r = index_->Search(Query{0, {"cat", "dog"}}, 10);
  ASSERT_EQ(r.size(), 3u);
  // doc2 contains both terms; docs 0 and 1 only one each but with higher
  // tf. All three must appear.
  std::unordered_set<DocId> found;
  for (const auto& e : r) found.insert(e.doc);
  EXPECT_TRUE(found.count(0) && found.count(1) && found.count(2));
}

TEST_F(CentralizedIndexTest, UnknownTermsYieldEmpty) {
  EXPECT_TRUE(index_->Search(Query{0, {"unicorn"}}, 10).empty());
}

TEST_F(CentralizedIndexTest, KLimitsResults) {
  RankedList r = index_->Search(Query{0, {"pet"}}, 2);
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(CentralizedIndexTest, ZeroKReturnsFullList) {
  RankedList r = index_->Search(Query{0, {"pet"}}, 0);
  EXPECT_EQ(r.size(), 3u);
}

TEST_F(CentralizedIndexTest, DuplicateQueryTermsDoNotCrash) {
  RankedList a = index_->Search(Query{0, {"cat"}}, 10);
  RankedList b = index_->Search(Query{0, {"cat", "cat"}}, 10);
  // Doubling a term scales scores but must not change the ordering.
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].doc, b[i].doc);
}

TEST_F(CentralizedIndexTest, StopTermPresentEverywhereIsIgnored) {
  corpus::Corpus corpus;
  corpus.AddDocument(TV({"common", "alpha"}));
  corpus.AddDocument(TV({"common", "beta"}));
  CentralizedIndex index(corpus);
  // "common" has df == N -> idf 0 -> contributes nothing.
  EXPECT_TRUE(index.Search(Query{0, {"common"}}, 10).empty());
}

TEST_F(CentralizedIndexTest, LongerDocumentsPenalizedByNormalization) {
  corpus::Corpus corpus;
  corpus.AddDocument(TV({"gold"}));                          // short, pure
  corpus.AddDocument(TV({"gold", "noise", "filler", "junk",  // diluted
                         "more", "words", "here"}));
  corpus.AddDocument(TV({"unrelated"}));  // keeps df("gold") < N
  CentralizedIndex index(corpus);
  RankedList r = index.Search(Query{0, {"gold"}}, 10);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].doc, 0u);
}

// ----------------------------------------------------------------- Metrics

TEST(MetricsTest, EvaluateTopKCountsHits) {
  RankedList results{{1, .9}, {2, .8}, {3, .7}, {4, .6}};
  std::unordered_set<DocId> relevant{2, 4, 9};
  PrecisionRecall pr = EvaluateTopK(results, 4, relevant);
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);          // 2 of 4
  EXPECT_NEAR(pr.recall, 2.0 / 3.0, 1e-12);     // 2 of 3 relevant
}

TEST(MetricsTest, PrecisionDenominatorIsRequestedK) {
  // The paper defines precision = K'/K with K the number of requested
  // answers; a short result list cannot inflate precision.
  RankedList results{{1, .9}};
  std::unordered_set<DocId> relevant{1};
  PrecisionRecall pr = EvaluateTopK(results, 10, relevant);
  EXPECT_DOUBLE_EQ(pr.precision, 0.1);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(MetricsTest, EmptyRelevantSetGivesZeroRecall) {
  RankedList results{{1, .9}};
  PrecisionRecall pr = EvaluateTopK(results, 1, {});
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
}

TEST(MetricsTest, CutoffRestrictsWindow) {
  RankedList results{{1, .9}, {2, .8}};
  std::unordered_set<DocId> relevant{2};
  PrecisionRecall pr = EvaluateTopK(results, 1, relevant);
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);  // the hit is at rank 2
}

TEST(MetricsTest, MeanPrecisionRecall) {
  std::vector<PrecisionRecall> prs{{1.0, 0.5}, {0.0, 0.0}, {0.5, 1.0}};
  PrecisionRecall mean = MeanPrecisionRecall(prs);
  EXPECT_DOUBLE_EQ(mean.precision, 0.5);
  EXPECT_DOUBLE_EQ(mean.recall, 0.5);
  EXPECT_DOUBLE_EQ(MeanPrecisionRecall({}).precision, 0.0);
}

TEST(MetricsTest, WeightedMean) {
  std::vector<PrecisionRecall> prs{{1.0, 1.0}, {0.0, 0.0}};
  std::vector<double> weights{3.0, 1.0};
  PrecisionRecall mean = WeightedMeanPrecisionRecall(prs, weights);
  EXPECT_DOUBLE_EQ(mean.precision, 0.75);
  EXPECT_DOUBLE_EQ(mean.recall, 0.75);
}

TEST(MetricsTest, WeightedMeanZeroWeightsIsZero) {
  std::vector<PrecisionRecall> prs{{1.0, 1.0}};
  std::vector<double> weights{0.0};
  PrecisionRecall mean = WeightedMeanPrecisionRecall(prs, weights);
  EXPECT_DOUBLE_EQ(mean.precision, 0.0);
}

TEST(MetricsTest, RatioHandlesZeroBaseline) {
  PrecisionRecall system{0.4, 0.3};
  PrecisionRecall baseline{0.5, 0.0};
  PrecisionRecall ratio = Ratio(system, baseline);
  EXPECT_DOUBLE_EQ(ratio.precision, 0.8);
  EXPECT_DOUBLE_EQ(ratio.recall, 0.0);
}

// Property: precision and recall always land in [0, 1].
class MetricsPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MetricsPropertyTest, BoundsHold) {
  const size_t k = GetParam();
  RankedList results;
  std::unordered_set<DocId> relevant;
  for (DocId d = 0; d < 20; ++d) {
    results.push_back({d, 1.0 / (1.0 + d)});
    if (d % 3 == 0) relevant.insert(d);
  }
  PrecisionRecall pr = EvaluateTopK(results, k, relevant);
  EXPECT_GE(pr.precision, 0.0);
  EXPECT_LE(pr.precision, 1.0);
  EXPECT_GE(pr.recall, 0.0);
  EXPECT_LE(pr.recall, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, MetricsPropertyTest,
                         ::testing::Values(1, 2, 5, 10, 20, 50));

}  // namespace
}  // namespace sprite::ir
