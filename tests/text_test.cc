// Unit tests for src/text: tokenizer, stop words, Porter stemmer, term
// vectors and the analyzer pipeline.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "text/analyzer.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/term_vector.h"
#include "text/tokenizer.h"

namespace sprite::text {
namespace {

// --------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, SplitsOnNonLetters) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("Hello, world! 123 foo_bar"),
            (std::vector<std::string>{"hello", "world", "foo", "bar"}));
}

TEST(TokenizerTest, KeepDigitsMode) {
  Tokenizer t(TokenizerOptions{.keep_digits = true});
  EXPECT_EQ(t.Tokenize("mp3 files x86"),
            (std::vector<std::string>{"mp3", "files", "x86"}));
}

TEST(TokenizerTest, LowercasingCanBeDisabled) {
  Tokenizer t(TokenizerOptions{.lowercase = false});
  EXPECT_EQ(t.Tokenize("MiXeD"), (std::vector<std::string>{"MiXeD"}));
}

TEST(TokenizerTest, MinLengthDropsShortTokens) {
  Tokenizer t(TokenizerOptions{.min_token_length = 3});
  EXPECT_EQ(t.Tokenize("a an the cat"),
            (std::vector<std::string>{"the", "cat"}));
}

TEST(TokenizerTest, MaxLengthTruncates) {
  Tokenizer t(TokenizerOptions{.max_token_length = 4});
  EXPECT_EQ(t.Tokenize("abcdefgh"), (std::vector<std::string>{"abcd"}));
}

TEST(TokenizerTest, EmptyAndSeparatorOnlyInputs) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize(" \t\n.,;!?123").empty());
}

TEST(TokenizerTest, NonAsciiBytesAreSeparators) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("caf\xc3\xa9 bar"),
            (std::vector<std::string>{"caf", "bar"}));
}

// -------------------------------------------------------------- Stop words

TEST(StopWordsTest, DefaultSetMatchesLucene) {
  const auto& words = DefaultStopWords();
  EXPECT_EQ(words.size(), 33u);
  StopWordSet set = StopWordSet::Default();
  for (const char* w : {"a", "the", "is", "with", "their", "such"}) {
    EXPECT_TRUE(set.Contains(w)) << w;
  }
  EXPECT_FALSE(set.Contains("retrieval"));
  EXPECT_FALSE(set.Contains("peer"));
}

TEST(StopWordsTest, FilterPreservesOrderOfNonStopWords) {
  StopWordSet set = StopWordSet::Default();
  EXPECT_EQ(set.Filter({"the", "quick", "brown", "fox", "is", "a", "fox"}),
            (std::vector<std::string>{"quick", "brown", "fox", "fox"}));
}

TEST(StopWordsTest, EmptySetFiltersNothing) {
  StopWordSet set;
  EXPECT_EQ(set.Filter({"the", "a"}),
            (std::vector<std::string>{"the", "a"}));
}

TEST(StopWordsTest, AddExtendsTheSet) {
  StopWordSet set;
  set.Add("custom");
  EXPECT_TRUE(set.Contains("custom"));
  EXPECT_EQ(set.size(), 1u);
}

// ----------------------------------------------------------- Porter stemmer

struct StemCase {
  const char* in;
  const char* out;
};

class PorterStemmerParamTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemmerParamTest, StemsAsPublished) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem(GetParam().in), GetParam().out)
      << "input: " << GetParam().in;
}

// The worked examples from Porter (1980), every step.
INSTANTIATE_TEST_SUITE_P(
    Step1a, PorterStemmerParamTest,
    ::testing::Values(StemCase{"caresses", "caress"},
                      StemCase{"ponies", "poni"}, StemCase{"ties", "ti"},
                      StemCase{"caress", "caress"}, StemCase{"cats", "cat"}));

INSTANTIATE_TEST_SUITE_P(
    Step1b, PorterStemmerParamTest,
    ::testing::Values(StemCase{"feed", "feed"}, StemCase{"agreed", "agre"},
                      StemCase{"plastered", "plaster"},
                      StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
                      StemCase{"sing", "sing"},
                      StemCase{"conflated", "conflat"},
                      StemCase{"troubled", "troubl"},
                      StemCase{"sized", "size"}, StemCase{"hopping", "hop"},
                      StemCase{"tanned", "tan"}, StemCase{"falling", "fall"},
                      StemCase{"hissing", "hiss"}, StemCase{"fizzed", "fizz"},
                      StemCase{"failing", "fail"},
                      StemCase{"filing", "file"}));

INSTANTIATE_TEST_SUITE_P(Step1c, PorterStemmerParamTest,
                         ::testing::Values(StemCase{"happy", "happi"},
                                           StemCase{"sky", "sky"}));

INSTANTIATE_TEST_SUITE_P(
    Step2, PorterStemmerParamTest,
    ::testing::Values(StemCase{"relational", "relat"},
                      StemCase{"conditional", "condit"},
                      StemCase{"rational", "ration"},
                      StemCase{"valenci", "valenc"},
                      StemCase{"hesitanci", "hesit"},
                      StemCase{"digitizer", "digit"},
                      StemCase{"radicalli", "radic"},
                      StemCase{"differentli", "differ"},
                      StemCase{"vileli", "vile"},
                      StemCase{"analogousli", "analog"},
                      StemCase{"vietnamization", "vietnam"},
                      StemCase{"predication", "predic"},
                      StemCase{"operator", "oper"},
                      StemCase{"feudalism", "feudal"},
                      StemCase{"decisiveness", "decis"},
                      StemCase{"hopefulness", "hope"},
                      StemCase{"callousness", "callous"},
                      StemCase{"formaliti", "formal"},
                      StemCase{"sensitiviti", "sensit"},
                      StemCase{"sensibiliti", "sensibl"}));

INSTANTIATE_TEST_SUITE_P(
    Step3, PorterStemmerParamTest,
    ::testing::Values(StemCase{"triplicate", "triplic"},
                      StemCase{"formative", "form"},
                      StemCase{"formalize", "formal"},
                      StemCase{"electriciti", "electr"},
                      StemCase{"electrical", "electr"},
                      StemCase{"hopeful", "hope"},
                      StemCase{"goodness", "good"}));

INSTANTIATE_TEST_SUITE_P(
    Step4, PorterStemmerParamTest,
    ::testing::Values(StemCase{"revival", "reviv"},
                      StemCase{"allowance", "allow"},
                      StemCase{"inference", "infer"},
                      StemCase{"airliner", "airlin"},
                      StemCase{"gyroscopic", "gyroscop"},
                      StemCase{"adjustable", "adjust"},
                      StemCase{"defensible", "defens"},
                      StemCase{"irritant", "irrit"},
                      StemCase{"replacement", "replac"},
                      StemCase{"adjustment", "adjust"},
                      StemCase{"dependent", "depend"},
                      StemCase{"adoption", "adopt"},
                      StemCase{"communism", "commun"},
                      StemCase{"activate", "activ"},
                      StemCase{"angulariti", "angular"},
                      StemCase{"homologou", "homolog"},
                      StemCase{"effective", "effect"},
                      StemCase{"bowdlerize", "bowdler"}));

INSTANTIATE_TEST_SUITE_P(Step5, PorterStemmerParamTest,
                         ::testing::Values(StemCase{"probate", "probat"},
                                           StemCase{"rate", "rate"},
                                           StemCase{"cease", "ceas"},
                                           StemCase{"controll", "control"},
                                           StemCase{"roll", "roll"}));

// IR-domain words that the SPRITE pipeline will actually see.
INSTANTIATE_TEST_SUITE_P(
    DomainWords, PorterStemmerParamTest,
    ::testing::Values(StemCase{"retrieval", "retriev"},
                      StemCase{"queries", "queri"},
                      StemCase{"indexing", "index"},
                      StemCase{"distributed", "distribut"},
                      StemCase{"networks", "network"},
                      StemCase{"learning", "learn"},
                      StemCase{"documents", "document"}));

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem(""), "");
  EXPECT_EQ(stemmer.Stem("a"), "a");
  EXPECT_EQ(stemmer.Stem("is"), "is");
  EXPECT_EQ(stemmer.Stem("as"), "as");
}

TEST(PorterStemmerTest, NonAlphaWordsUnchanged) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("x86abc"), "x86abc");
  EXPECT_EQ(stemmer.Stem("Mixed"), "Mixed");  // uppercase: caller lowercases
}

TEST(PorterStemmerTest, OutputNeverLongerThanInput) {
  PorterStemmer stemmer;
  for (const char* w :
       {"nationalization", "troublesomeness", "characteristically",
        "antidisestablishmentarianism", "zzz", "aaaa", "oscillators"}) {
    EXPECT_LE(stemmer.Stem(w).size(), std::string(w).size()) << w;
  }
}

TEST(PorterStemmerTest, StemOfStemIsStable) {
  // Not guaranteed by the algorithm in general, but holds for common
  // vocabulary; a regression here usually means a broken measure function.
  PorterStemmer stemmer;
  for (const char* w : {"running", "relational", "happiness", "engineering",
                        "computers", "distributed"}) {
    std::string once = stemmer.Stem(w);
    EXPECT_EQ(stemmer.Stem(once), once) << w;
  }
}

// ------------------------------------------------------------- TermVector

TEST(TermVectorTest, FromTokensCountsAndLength) {
  TermVector tv =
      TermVector::FromTokens({"cat", "dog", "cat", "bird", "cat"});
  EXPECT_EQ(tv.Count("cat"), 3u);
  EXPECT_EQ(tv.Count("dog"), 1u);
  EXPECT_EQ(tv.Count("absent"), 0u);
  EXPECT_EQ(tv.length(), 5u);
  EXPECT_EQ(tv.num_distinct_terms(), 3u);
  EXPECT_TRUE(tv.Contains("bird"));
  EXPECT_FALSE(tv.Contains("fish"));
}

TEST(TermVectorTest, NormalizedFreq) {
  TermVector tv = TermVector::FromTokens({"a", "a", "b", "c"});
  EXPECT_DOUBLE_EQ(tv.NormalizedFreq("a"), 0.5);
  EXPECT_DOUBLE_EQ(tv.NormalizedFreq("b"), 0.25);
  EXPECT_DOUBLE_EQ(tv.NormalizedFreq("zzz"), 0.0);
}

TEST(TermVectorTest, EmptyVector) {
  TermVector tv;
  EXPECT_TRUE(tv.empty());
  EXPECT_EQ(tv.length(), 0u);
  EXPECT_DOUBLE_EQ(tv.NormalizedFreq("x"), 0.0);
  EXPECT_TRUE(tv.TopK(3).empty());
}

TEST(TermVectorTest, AddWithCount) {
  TermVector tv;
  tv.Add("x", 4);
  tv.Add("x");
  tv.Add("y", 0);  // no-op
  EXPECT_EQ(tv.Count("x"), 5u);
  EXPECT_FALSE(tv.Contains("y"));
  EXPECT_EQ(tv.length(), 5u);
}

TEST(TermVectorTest, TopKOrdersByFreqThenTerm) {
  TermVector tv;
  tv.Add("beta", 2);
  tv.Add("alpha", 2);
  tv.Add("gamma", 5);
  tv.Add("delta", 1);
  auto top = tv.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].term, "gamma");
  EXPECT_EQ(top[1].term, "alpha");  // tie with beta: lexicographic
  EXPECT_EQ(top[2].term, "beta");
}

TEST(TermVectorTest, TopKLargerThanVocabulary) {
  TermVector tv = TermVector::FromTokens({"only", "two", "two"});
  EXPECT_EQ(tv.TopK(10).size(), 2u);
}

TEST(TermVectorTest, SortedTermsIsCompleteAndOrdered) {
  TermVector tv = TermVector::FromTokens({"b", "b", "a", "c", "c", "c"});
  auto sorted = tv.SortedTerms();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].term, "c");
  EXPECT_EQ(sorted[1].term, "b");
  EXPECT_EQ(sorted[2].term, "a");
}

// --------------------------------------------------------------- Analyzer

TEST(AnalyzerTest, FullPipeline) {
  Analyzer analyzer;
  // "the" and "is" are stop words; the rest stems.
  EXPECT_EQ(analyzer.Analyze("The indexing of documents is queried"),
            (std::vector<std::string>{"index", "document", "queri"}));
}

TEST(AnalyzerTest, StemmingCanBeDisabled) {
  Analyzer analyzer(AnalyzerOptions{.stem = false});
  EXPECT_EQ(analyzer.Analyze("running dogs"),
            (std::vector<std::string>{"running", "dogs"}));
}

TEST(AnalyzerTest, StopwordRemovalCanBeDisabled) {
  Analyzer analyzer(AnalyzerOptions{.remove_stopwords = false, .stem = false});
  EXPECT_EQ(analyzer.Analyze("the cat"),
            (std::vector<std::string>{"the", "cat"}));
}

TEST(AnalyzerTest, AnalyzeToVectorAggregates) {
  Analyzer analyzer;
  TermVector tv = analyzer.AnalyzeToVector(
      "Peers index terms; peers query terms; terms everywhere");
  EXPECT_EQ(tv.Count("term"), 3u);
  EXPECT_EQ(tv.Count("peer"), 2u);
  EXPECT_EQ(tv.Count("queri"), 1u);
}

TEST(AnalyzerTest, StopwordsRemovedBeforeStemming) {
  Analyzer analyzer;
  // "there" is a stop word and must not survive as stem "there"/"ther".
  auto tokens = analyzer.Analyze("there documents");
  EXPECT_EQ(tokens, (std::vector<std::string>{"document"}));
}

TEST(AnalyzerTest, EmptyInput) {
  Analyzer analyzer;
  EXPECT_TRUE(analyzer.Analyze("").empty());
  EXPECT_TRUE(analyzer.AnalyzeToVector(".,;").empty());
}

}  // namespace
}  // namespace sprite::text
