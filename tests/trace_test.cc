// Tests for the distributed-tracing subsystem: the simulated clock, span
// nesting, bounded retention (sampling ring + slowest-K), the Perfetto and
// JSONL exporters with their offline parser/report, and the SpriteSystem
// integration — including the acceptance property that a search's span
// tree sums to the latency.search.total_ms observation, deterministically
// across identical runs.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/sprite_system.h"
#include "corpus/corpus.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_report.h"

namespace sprite::obs {
namespace {

// Runs one trace of `dur_ms` total on `t`: root span plus one child.
void RunTrace(Tracer& t, double dur_ms, const std::string& name = "op") {
  t.BeginSpan(name, "peer-a");
  t.BeginSpan("child", "peer-b");
  t.clock().AdvanceMs(dur_ms);
  t.EndSpan();
  t.EndSpan();
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now_ms(), 0.0);
  clock.AdvanceMs(5.0);
  clock.AdvanceMs(2.5);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 7.5);
  clock.AdvanceMs(-3.0);  // ignored
  clock.AdvanceMs(std::nan(""));  // ignored
  EXPECT_DOUBLE_EQ(clock.now_ms(), 7.5);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.now_ms(), 0.0);
}

TEST(TracerTest, DisabledTracerIsANoOp) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  TraceContext ctx = t.BeginSpan("op", "peer");
  EXPECT_FALSE(ctx.valid());
  EXPECT_FALSE(t.InActiveSpan());
  t.EndSpan();
  EXPECT_EQ(t.num_started(), 0u);
  EXPECT_EQ(t.num_retained(), 0u);
}

TEST(TracerTest, NestingAssignsParentIds) {
  Tracer t;
  t.set_enabled(true);
  TraceContext root = t.BeginSpan("search", "peer-1");
  ASSERT_TRUE(root.valid());
  t.clock().AdvanceMs(1.0);
  TraceContext child = t.BeginSpan("route", "peer-1");
  EXPECT_EQ(child.trace_id, root.trace_id);
  t.clock().AdvanceMs(2.0);
  TraceContext grandchild = t.BeginSpan("chord.hop", "peer-2");
  t.clock().AdvanceMs(3.0);
  t.EndSpan();
  t.EndSpan();
  t.EndSpan();

  ASSERT_EQ(t.num_retained(), 1u);
  const Trace* trace = t.Retained()[0];
  ASSERT_EQ(trace->spans.size(), 3u);
  const Span& s0 = trace->spans[0];
  const Span& s1 = trace->spans[1];
  const Span& s2 = trace->spans[2];
  EXPECT_EQ(s0.parent_id, 0u);
  EXPECT_EQ(s1.parent_id, s0.id);
  EXPECT_EQ(s2.parent_id, s1.id);
  EXPECT_EQ(s2.id, grandchild.span_id);
  EXPECT_DOUBLE_EQ(s0.duration_ms(), 6.0);
  EXPECT_DOUBLE_EQ(s1.duration_ms(), 5.0);
  EXPECT_DOUBLE_EQ(s2.duration_ms(), 3.0);
  EXPECT_DOUBLE_EQ(trace->duration_ms(), 6.0);
}

TEST(TracerTest, AnnotationsTargetTheRightSpan) {
  Tracer t;
  t.set_enabled(true);
  {
    ScopedSpan parent(&t, "parent", "p");
    {
      ScopedSpan child(&t, "child", "p");
      child.Annotate("k", "child-value");
      t.Annotate("innermost", "yes");  // lands on child
      t.AnnotateAdd("bytes", 10);
      t.AnnotateAdd("bytes", 5);
    }
    // After the child closed, the parent is annotatable both implicitly
    // (innermost) and explicitly (by its own context).
    parent.Annotate("k", "parent-value");
    t.Annotate("late", "ok");
  }
  ASSERT_EQ(t.num_retained(), 1u);
  const Trace* trace = t.Retained()[0];
  ASSERT_EQ(trace->spans.size(), 2u);
  EXPECT_EQ(trace->spans[0].annotations.at("k"), "parent-value");
  EXPECT_EQ(trace->spans[0].annotations.at("late"), "ok");
  EXPECT_EQ(trace->spans[1].annotations.at("k"), "child-value");
  EXPECT_EQ(trace->spans[1].annotations.at("innermost"), "yes");
  EXPECT_EQ(trace->spans[1].annotations.at("bytes"), "15");
}

TEST(TracerTest, SamplingKeepsEveryNth) {
  TraceOptions options;
  options.sample_every = 3;
  options.keep_slowest = 0;
  Tracer t(options);
  t.set_enabled(true);
  for (int i = 0; i < 10; ++i) RunTrace(t, 1.0);
  EXPECT_EQ(t.num_started(), 10u);
  // Operations 3, 6 and 9 are kept.
  ASSERT_EQ(t.num_retained(), 3u);
  for (const Trace* trace : t.Retained()) {
    EXPECT_EQ(trace->id % 3, 0u);
  }
}

TEST(TracerTest, RetentionNeverExceedsRingPlusSlowest) {
  TraceOptions options;
  options.sample_every = 1;
  options.max_traces = 4;
  options.keep_slowest = 2;
  Tracer t(options);
  t.set_enabled(true);
  // Decreasing durations: the slowest operations are the earliest, which
  // the ring evicts — only the slowest-K reservoir still holds them.
  for (int i = 0; i < 20; ++i) RunTrace(t, 20.0 - i);
  EXPECT_EQ(t.num_started(), 20u);
  const std::vector<const Trace*> retained = t.Retained();
  EXPECT_LE(retained.size(), options.max_traces + options.keep_slowest);
  ASSERT_EQ(retained.size(), 6u);
  // Sorted by start time: slowest-K (traces 1, 2) first, then the ring's
  // last four.
  EXPECT_EQ(retained[0]->id, 1u);
  EXPECT_EQ(retained[1]->id, 2u);
  EXPECT_EQ(retained[2]->id, 17u);
  EXPECT_EQ(retained[5]->id, 20u);
}

TEST(TracerTest, SlowestSurvivesWithSamplingOff) {
  TraceOptions options;
  options.sample_every = 0;  // keep nothing by sampling
  options.keep_slowest = 1;
  Tracer t(options);
  t.set_enabled(true);
  RunTrace(t, 1.0);
  RunTrace(t, 50.0);  // the slowest
  RunTrace(t, 2.0);
  ASSERT_EQ(t.num_retained(), 1u);
  EXPECT_DOUBLE_EQ(t.Retained()[0]->duration_ms(), 50.0);
}

TEST(TracerTest, DisablingMidOperationAbortsTheTrace) {
  Tracer t;
  t.set_enabled(true);
  t.BeginSpan("op", "p");
  t.set_enabled(false);
  EXPECT_FALSE(t.InActiveSpan());
  t.set_enabled(true);
  t.EndSpan();  // no crash, nothing to end
  EXPECT_EQ(t.num_retained(), 0u);
  RunTrace(t, 1.0);
  EXPECT_EQ(t.num_retained(), 1u);
}

TEST(TraceExportTest, PerfettoJsonHasEventsAndThreadNames) {
  Tracer t;
  t.set_enabled(true);
  ScopedSpan span(&t, "search", "peer-1");
  span.Annotate("query", "7");
  t.clock().AdvanceMs(4.0);
  span.End();

  const std::string json = t.ToPerfettoJson();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Durations are exported in microseconds.
  EXPECT_NE(json.find("\"dur\":4000.000"), std::string::npos);
  EXPECT_NE(json.find("\"query\":\"7\""), std::string::npos);
  EXPECT_NE(json.find("\"traces_started\":1"), std::string::npos);
}

TEST(TraceExportTest, JsonlHasHeaderAndOneSpanPerLine) {
  Tracer t;
  t.set_enabled(true);
  RunTrace(t, 3.0, "publish.term");
  const std::string jsonl = t.ToJsonl();
  EXPECT_EQ(jsonl.find("{\"format\":\"sprite-trace-jsonl\""), 0u);
  size_t lines = 0;
  for (char c : jsonl) lines += (c == '\n');
  EXPECT_EQ(lines, 3u);  // header + 2 spans
  EXPECT_NE(jsonl.find("\"name\":\"publish.term\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"dur_ms\":3.000"), std::string::npos);
}

TEST(TraceReportTest, ParsesBothFormatsIdentically) {
  Tracer t;
  t.set_enabled(true);
  {
    ScopedSpan root(&t, "search", "peer-1");
    root.Annotate("query", "3");
    {
      ScopedSpan child(&t, "fetch", "peer-2");
      child.Annotate("bytes", "128");
      t.clock().AdvanceMs(2.0);
    }
    t.clock().AdvanceMs(1.0);
  }

  std::vector<TraceSpanRecord> from_jsonl, from_perfetto;
  std::string error;
  ASSERT_TRUE(ParseTraceDump(t.ToJsonl(), &from_jsonl, &error)) << error;
  ASSERT_TRUE(ParseTraceDump(t.ToPerfettoJson(), &from_perfetto, &error))
      << error;
  ASSERT_EQ(from_jsonl.size(), 2u);
  ASSERT_EQ(from_perfetto.size(), 2u);
  for (size_t i = 0; i < from_jsonl.size(); ++i) {
    EXPECT_EQ(from_jsonl[i].name, from_perfetto[i].name);
    EXPECT_EQ(from_jsonl[i].peer, from_perfetto[i].peer);
    EXPECT_EQ(from_jsonl[i].span_id, from_perfetto[i].span_id);
    EXPECT_EQ(from_jsonl[i].parent_id, from_perfetto[i].parent_id);
    EXPECT_NEAR(from_jsonl[i].dur_ms, from_perfetto[i].dur_ms, 1e-9);
  }
  EXPECT_EQ(from_jsonl[0].annotations.at("query"), "3");
  EXPECT_EQ(from_perfetto[1].annotations.at("bytes"), "128");
}

TEST(TraceReportTest, RejectsGarbage) {
  std::vector<TraceSpanRecord> spans;
  std::string error;
  EXPECT_FALSE(ParseTraceDump("not a trace\nat all\n", &spans, &error));
  EXPECT_FALSE(error.empty());
}

TEST(TraceReportTest, RenderMentionsPhasesTreesAndPeers) {
  Tracer t;
  t.set_enabled(true);
  {
    ScopedSpan root(&t, "search", "peer-1");
    {
      ScopedSpan route(&t, "route", "peer-1");
      t.clock().AdvanceMs(50.0);
    }
    {
      ScopedSpan fetch(&t, "fetch", "peer-2");
      t.clock().AdvanceMs(30.0);
    }
    {
      ScopedSpan rank(&t, "rank", "peer-1");
      t.clock().AdvanceMs(20.0);
    }
  }
  std::vector<TraceSpanRecord> spans;
  std::string error;
  ASSERT_TRUE(ParseTraceDump(t.ToJsonl(), &spans, &error)) << error;
  const std::string report = RenderTraceReport(spans, /*top_k=*/3);
  EXPECT_NE(report.find("search"), std::string::npos);
  EXPECT_NE(report.find("route"), std::string::npos);
  EXPECT_NE(report.find("fetch"), std::string::npos);
  EXPECT_NE(report.find("rank"), std::string::npos);
  EXPECT_NE(report.find("peer-2"), std::string::npos);
  EXPECT_NE(report.find("100.000 ms"), std::string::npos);  // the root
}

// --- SpriteSystem integration ------------------------------------------

text::TermVector TV(const std::vector<std::string>& tokens) {
  return text::TermVector::FromTokens(tokens);
}

corpus::Query Q(corpus::QueryId id, std::vector<std::string> terms) {
  return corpus::Query{id, std::move(terms)};
}

core::SpriteConfig SmallConfig() {
  core::SpriteConfig c;
  c.num_peers = 16;
  c.initial_terms = 2;
  c.terms_per_iteration = 2;
  c.max_index_terms = 6;
  return c;
}

corpus::Corpus PetCorpus() {
  corpus::Corpus corpus;
  corpus.AddDocument(
      TV({"cat", "cat", "cat", "feline", "feline", "whisker", "purr"}));
  corpus.AddDocument(
      TV({"dog", "dog", "dog", "canine", "canine", "leash", "bark"}));
  corpus.AddDocument(TV({"pet", "pet", "cat", "dog", "food"}));
  return corpus;
}

TEST(TraceIntegrationTest, SearchSpanTreeSumsToTotalLatency) {
  corpus::Corpus corpus = PetCorpus();
  core::SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus).ok());
  system.mutable_tracer().set_enabled(true);
  system.ClearMetrics();
  ASSERT_TRUE(system.Search(Q(1, {"cat", "dog"}), 10, /*record=*/false).ok());

  // Exactly one retained trace: the search.
  ASSERT_EQ(system.tracer().num_retained(), 1u);
  const Trace* trace = system.tracer().Retained()[0];
  const Span* root = trace->root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "search");

  // Direct children: one route and one fetch per term, one rank.
  size_t routes = 0, fetches = 0, ranks = 0;
  double children_ms = 0.0;
  for (const Span& s : trace->spans) {
    if (s.parent_id != root->id) continue;
    children_ms += s.duration_ms();
    if (s.name == "route") ++routes;
    if (s.name == "fetch") {
      ++fetches;
      // The fetch span names the indexing peer that served the term.
      EXPECT_EQ(s.annotations.count("peer_id"), 1u);
      EXPECT_FALSE(s.peer.empty());
    }
    if (s.name == "rank") ++ranks;
  }
  EXPECT_EQ(routes, 2u);
  EXPECT_EQ(fetches, 2u);
  EXPECT_EQ(ranks, 1u);

  // Acceptance property: the span tree reproduces the latency metrics —
  // the clock only advances inside the phase children, so their summed
  // durations equal the root's duration and the recorded total.
  const Histogram* total = system.metrics().histogram(
      "latency.search.total_ms");
  ASSERT_NE(total, nullptr);
  ASSERT_EQ(total->count(), 1u);
  EXPECT_NEAR(children_ms, root->duration_ms(), 1e-6);
  EXPECT_NEAR(root->duration_ms(), total->Mean(), 1e-6);
  EXPECT_GT(total->Mean(), 0.0);

  // Route spans decompose into per-hop chord spans mirrored by the
  // chord.lookup_hops histogram.
  size_t hop_spans = 0;
  for (const Span& s : trace->spans) {
    if (s.name == "chord.hop") ++hop_spans;
  }
  const Histogram* hops = system.metrics().histogram("chord.lookup_hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_EQ(static_cast<double>(hop_spans), hops->Mean() *
                                                static_cast<double>(
                                                    hops->count()));
}

TEST(TraceIntegrationTest, LearningAndMaintenanceProduceTraces) {
  corpus::Corpus corpus = PetCorpus();
  core::SpriteConfig config = SmallConfig();
  config.replication_factor = 1;
  core::SpriteSystem system(config);
  system.mutable_tracer().set_enabled(true);
  system.RecordQuery(Q(1, {"cat", "whisker"}));
  system.RecordQuery(Q(2, {"cat", "whisker"}));
  ASSERT_TRUE(system.ShareCorpus(corpus).ok());
  system.RunLearningIteration();
  system.ReplicateIndexes();
  (void)system.RunHeartbeats();

  bool saw_learning = false, saw_replication = false, saw_heartbeat = false;
  for (const Trace* trace : system.tracer().Retained()) {
    const Span* root = trace->root();
    ASSERT_NE(root, nullptr);
    if (root->name == "learning.iteration") saw_learning = true;
    if (root->name == "replication.run") saw_replication = true;
    if (root->name == "heartbeat.round") saw_heartbeat = true;
  }
  EXPECT_TRUE(saw_learning);
  EXPECT_TRUE(saw_replication);
  EXPECT_TRUE(saw_heartbeat);
}

// Runs an identical small workload on a fresh system and exports both
// trace formats.
std::pair<std::string, std::string> TracedRun(uint64_t seed) {
  corpus::Corpus corpus = PetCorpus();
  core::SpriteConfig config = SmallConfig();
  config.seed = seed;
  core::SpriteSystem system(config);
  system.mutable_tracer().set_enabled(true);
  system.RecordQuery(Q(1, {"cat", "dog"}));
  SPRITE_CHECK_OK(system.ShareCorpus(corpus));
  system.RunLearningIteration();
  (void)system.Search(Q(2, {"cat", "dog"}), 10);
  (void)system.Search(Q(3, {"feline", "pet"}), 10);
  return {system.tracer().ToPerfettoJson(), system.tracer().ToJsonl()};
}

TEST(TraceIntegrationTest, IdenticalSeedsYieldByteIdenticalDumps) {
  const auto [perfetto_a, jsonl_a] = TracedRun(/*seed=*/7);
  const auto [perfetto_b, jsonl_b] = TracedRun(/*seed=*/7);
  EXPECT_EQ(perfetto_a, perfetto_b);
  EXPECT_EQ(jsonl_a, jsonl_b);
  EXPECT_FALSE(jsonl_a.empty());
}

TEST(TraceIntegrationTest, RetentionStaysBoundedOnTheLiveSystem) {
  corpus::Corpus corpus = PetCorpus();
  core::SpriteSystem system(SmallConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus).ok());
  TraceOptions options;
  options.sample_every = 2;
  options.max_traces = 8;
  options.keep_slowest = 3;
  system.mutable_tracer().set_options(options);
  system.mutable_tracer().set_enabled(true);
  for (uint32_t i = 0; i < 50; ++i) {
    (void)system.Search(Q(i + 1, {"cat", "dog"}), 10, /*record=*/false);
  }
  EXPECT_EQ(system.tracer().num_started(), 50u);
  EXPECT_LE(system.tracer().num_retained(),
            options.max_traces + options.keep_slowest);
}

// --- Report edge cases --------------------------------------------------

TEST(TraceReportTest, EmptyTraceDumpIsARecognizedError) {
  std::vector<TraceSpanRecord> spans;
  std::string error;
  EXPECT_FALSE(ParseTraceDump("", &spans, &error));
  EXPECT_FALSE(error.empty());

  // A dump from an enabled tracer that never traced anything parses to
  // the same recognized error (header line only, no spans).
  Tracer t;
  t.set_enabled(true);
  spans.clear();
  error.clear();
  EXPECT_FALSE(ParseTraceDump(t.ToJsonl(), &spans, &error));
  EXPECT_FALSE(error.empty());

  // The renderer itself tolerates an empty span list without crashing.
  EXPECT_FALSE(RenderTraceReport({}, 5).empty());
}

TEST(TraceReportTest, SingleSpanTraceRendersItsFullDuration) {
  Tracer t;
  t.set_enabled(true);
  t.BeginSpan("lonely", "peer-x");
  t.clock().AdvanceMs(42.0);
  t.EndSpan();

  std::vector<TraceSpanRecord> spans;
  std::string error;
  ASSERT_TRUE(ParseTraceDump(t.ToJsonl(), &spans, &error)) << error;
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_DOUBLE_EQ(spans[0].dur_ms, 42.0);
  // With no children, the span's self time is its full duration.
  const std::string report = RenderTraceReport(spans, 1);
  EXPECT_NE(report.find("lonely"), std::string::npos);
  EXPECT_NE(report.find("peer-x"), std::string::npos);
  EXPECT_NE(report.find("42"), std::string::npos);
}

TEST(TraceReportTest, WrappedSlowestRingStillReportsTheSlowest) {
  TraceOptions options;
  options.sample_every = 1;
  options.max_traces = 2;
  options.keep_slowest = 2;
  Tracer t(options);
  t.set_enabled(true);
  // The slowest operations (90 ms, 70 ms) land early and mid-stream, so
  // the 2-entry sampling ring evicts them and the slowest-K reservoir
  // must replace its own contents as slower traces arrive ("wrap").
  const double durations[] = {10, 20, 90, 30, 15, 25, 70, 5, 12, 18};
  // Root name "search": the report's slowest-K section only considers
  // search operations.
  for (double d : durations) RunTrace(t, d, "search");
  EXPECT_LE(t.num_retained(), options.max_traces + options.keep_slowest);

  std::vector<TraceSpanRecord> spans;
  std::string error;
  ASSERT_TRUE(ParseTraceDump(t.ToJsonl(), &spans, &error)) << error;
  std::vector<double> root_durations;
  for (const TraceSpanRecord& s : spans) {
    if (s.parent_id == 0) root_durations.push_back(s.dur_ms);
  }
  EXPECT_LE(root_durations.size(), 4u);
  // The reservoir held on to exactly the two slowest operations.
  EXPECT_NE(std::find(root_durations.begin(), root_durations.end(), 90.0),
            root_durations.end());
  EXPECT_NE(std::find(root_durations.begin(), root_durations.end(), 70.0),
            root_durations.end());
  // And they survive into the rendered slowest-K section, slowest first.
  const std::string report = RenderTraceReport(spans, 2);
  const size_t at90 = report.find("90.0");
  const size_t at70 = report.find("70.0");
  EXPECT_NE(at90, std::string::npos);
  EXPECT_NE(at70, std::string::npos);
  EXPECT_LT(at90, at70);
}


// --- Live-tracing seams (DESIGN.md §16) -------------------------------------

TEST(WallClockTest, MonotoneAndOnTheRealtimeAxis) {
  WallClock clock;
  const double a = clock.now_ms();
  double b = a;
  for (int i = 0; i < 1000; ++i) b = clock.now_ms();
  EXPECT_GE(b, a);
  // Milliseconds since the Unix epoch: any plausible "now" is past 2001
  // (1e12 ms) — a cheap guard that the anchor really is realtime, not a
  // process-relative zero.
  EXPECT_GT(a, 1e12);
}

TEST(TracerTest, TimeSourceSeamSwapsAndRestores) {
  Tracer t;
  t.set_enabled(true);
  WallClock wall;
  t.set_time_source(&wall);
  EXPECT_GT(t.now_ms(), 1e12);
  t.set_time_source(nullptr);  // back to the embedded SimClock
  EXPECT_DOUBLE_EQ(t.now_ms(), 0.0);
  RunTrace(t, 3.0);
  ASSERT_EQ(t.num_retained(), 1u);
  EXPECT_DOUBLE_EQ(t.Retained()[0]->duration_ms(), 3.0);
}

TEST(TracerTest, ZeroSaltKeepsSequentialIds) {
  Tracer t;
  t.set_enabled(true);
  RunTrace(t, 1.0);
  ASSERT_EQ(t.num_retained(), 1u);
  const Trace* trace = t.Retained()[0];
  EXPECT_EQ(trace->id, 1u);
  ASSERT_EQ(trace->spans.size(), 2u);
  EXPECT_EQ(trace->spans[0].id, 1u);
  EXPECT_EQ(trace->spans[1].id, 2u);
}

TEST(TracerTest, SaltedIdsAreNonZero32BitAndSaltDependent) {
  Tracer a, b;
  a.set_enabled(true);
  b.set_enabled(true);
  a.set_id_salt(0x1111);
  b.set_id_salt(0x2222);
  RunTrace(a, 1.0);
  RunTrace(b, 1.0);
  ASSERT_EQ(a.num_retained(), 1u);
  ASSERT_EQ(b.num_retained(), 1u);
  const Trace* ta = a.Retained()[0];
  const Trace* tb = b.Retained()[0];
  EXPECT_NE(ta->id, 0u);
  EXPECT_LE(ta->id, 0xffffffffull);  // fits the wire's u32 context field
  EXPECT_NE(ta->id, tb->id);
  for (const Span& s : ta->spans) {
    EXPECT_NE(s.id, 0u);
    EXPECT_LE(s.id, 0xffffffffull);
    EXPECT_NE(s.id, ta->id);  // span and trace streams are disjoint
  }
}

TEST(TracerTest, BeginRemoteSpanAdoptsTraceAndParent) {
  Tracer t;
  t.set_enabled(true);
  TraceContext ctx = t.BeginRemoteSpan("serve.query", "n1",
                                       /*trace_id=*/0xabcdu,
                                       /*parent_span_id=*/55);
  EXPECT_TRUE(ctx.valid());
  EXPECT_EQ(ctx.trace_id, 0xabcdu);
  t.EndSpan();
  ASSERT_EQ(t.num_retained(), 1u);
  const Trace* trace = t.Retained()[0];
  EXPECT_EQ(trace->id, 0xabcdu);
  ASSERT_EQ(trace->spans.size(), 1u);
  // The adopted root is not a local root: its parent is the remote
  // caller's span, which is what lets the collector stitch the trees.
  EXPECT_EQ(trace->spans[0].parent_id, 55u);
}

TEST(TracerTest, BeginRemoteSpanDegradesToLocalSpan) {
  Tracer t;
  t.set_enabled(true);
  // Zero trace id: nothing to adopt.
  TraceContext root = t.BeginRemoteSpan("op", "n1", 0, 9);
  EXPECT_NE(root.trace_id, 0xabcdu);
  // Open stack: nests locally instead of starting an operation.
  TraceContext child = t.BeginRemoteSpan("inner", "n1", 0xabcdu, 9);
  EXPECT_EQ(child.trace_id, root.trace_id);
  t.EndSpan();
  t.EndSpan();
  ASSERT_EQ(t.num_retained(), 1u);
  ASSERT_EQ(t.Retained()[0]->spans.size(), 2u);
  EXPECT_EQ(t.Retained()[0]->spans[0].parent_id, 0u);
}

TEST(TracerTest, DrainJsonlEmptiesRetentionAndKeepsStarted) {
  Tracer t;
  t.set_enabled(true);
  RunTrace(t, 1.0);
  RunTrace(t, 2.0);
  const std::string first = t.DrainJsonl();
  EXPECT_NE(first.find("\"traces_started\":2"), std::string::npos);
  EXPECT_NE(first.find("\"name\":\"op\""), std::string::npos);
  EXPECT_EQ(t.num_retained(), 0u);
  // The drain is destructive for spans but monotone for the counter.
  const std::string second = t.DrainJsonl();
  EXPECT_NE(second.find("\"traces_started\":2"), std::string::npos);
  EXPECT_EQ(second.find("\"name\""), std::string::npos);
  RunTrace(t, 1.0);
  EXPECT_NE(t.DrainJsonl().find("\"traces_started\":3"), std::string::npos);
}

}  // namespace
}  // namespace sprite::obs
