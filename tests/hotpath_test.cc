// Tests for the hot-path machinery: TermDict interning (determinism,
// unknown lookup, round-trip, ring-key equivalence with the string hash),
// bounded top-k selection (byte-identical prefix vs. a full sort), the
// hoisted per-term IDF (same scores as recomputing IDF per posting), and
// whole-system determinism — identical seeds yield byte-identical ranked
// lists and observability dumps with the interned representation.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/topk.h"
#include "core/sprite_system.h"
#include "corpus/corpus.h"
#include "dht/id_space.h"
#include "ir/ranked_list.h"
#include "ir/similarity.h"
#include "text/term_dict.h"

namespace sprite {
namespace {

// ------------------------------------------------------------- TermDict

TEST(TermDictTest, InternAssignsDenseIdsInFirstSightOrder) {
  text::TermDict dict;
  EXPECT_EQ(dict.Intern("cat"), 0u);
  EXPECT_EQ(dict.Intern("dog"), 1u);
  EXPECT_EQ(dict.Intern("cat"), 0u);  // idempotent
  EXPECT_EQ(dict.Intern("emu"), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(TermDictTest, DeterministicAcrossInstances) {
  // Two dictionaries fed the same terms in the same order agree on every
  // id and precomputed key — the property that makes a re-run of the same
  // seeded workload reproduce the same ring placement.
  const std::vector<std::string> corpus_order{"pet", "cat", "dog", "cat",
                                              "feline", "pet", "whisker"};
  text::TermDict a, b;
  for (const std::string& term : corpus_order) {
    const text::TermId ia = a.Intern(term);
    const text::TermId ib = b.Intern(term);
    EXPECT_EQ(ia, ib) << term;
    EXPECT_EQ(a.RawKeyOf(ia), b.RawKeyOf(ib)) << term;
  }
}

TEST(TermDictTest, LookupOfUnknownTermIsInvalid) {
  text::TermDict dict;
  dict.Intern("cat");
  EXPECT_EQ(dict.Lookup("dog"), text::kInvalidTermId);
  EXPECT_EQ(dict.Lookup(""), text::kInvalidTermId);
  EXPECT_EQ(dict.Lookup("cat"), 0u);
}

TEST(TermDictTest, RoundTripRecoversSpelling) {
  text::TermDict dict;
  const std::vector<std::string> terms{"alpha", "beta", "", "x"};
  for (const std::string& term : terms) {
    EXPECT_EQ(dict.TermOf(dict.Intern(term)), term);
  }
}

TEST(TermDictTest, PrecomputedRingKeyMatchesStringHash) {
  // The whole point of interning: space.Truncate(RawKeyOf(id)) must be
  // bit-for-bit what the seed computed per lookup via KeyForString.
  text::TermDict dict;
  for (int bits : {8, 16, 32}) {
    dht::IdSpace space(bits);
    for (const std::string& term :
         {"cat", "dog", "supercalifragilistic", ""}) {
      const text::TermId id = dict.Intern(term);
      EXPECT_EQ(space.Truncate(dict.RawKeyOf(id)), space.KeyForString(term))
          << term << " @" << bits << " bits";
    }
  }
}

TEST(TermDictTest, SpellingReferencesSurviveRehash) {
  // TermOf hands out references; they must stay valid as the dictionary
  // grows (the spellings live in a deque, not a reallocating vector).
  text::TermDict dict;
  const std::string& first = dict.TermOf(dict.Intern("first"));
  for (int i = 0; i < 5000; ++i) dict.Intern("t" + std::to_string(i));
  EXPECT_EQ(first, "first");
}

// ----------------------------------------------------------- TopKInPlace

TEST(TopKTest, PrefixMatchesFullSortExactly) {
  Rng rng(42);
  const auto cmp = [](const std::pair<double, uint32_t>& a,
                      const std::pair<double, uint32_t>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // strict total order
  };
  for (const size_t n : {0u, 1u, 7u, 100u, 1000u}) {
    std::vector<std::pair<double, uint32_t>> data;
    for (size_t i = 0; i < n; ++i) {
      // Coarse scores force plenty of ties through the tie-breaker.
      data.emplace_back(static_cast<double>(rng.NextUint64(8)),
                        static_cast<uint32_t>(rng.NextUint64(1000)));
    }
    for (const size_t k : {0u, 1u, 5u, 99u, 1000u, 5000u}) {
      std::vector<std::pair<double, uint32_t>> sorted = data;
      std::sort(sorted.begin(), sorted.end(), cmp);
      if (k != 0 && sorted.size() > k) sorted.resize(k);

      std::vector<std::pair<double, uint32_t>> topk = data;
      TopKInPlace(topk, k, cmp);
      EXPECT_EQ(topk, sorted) << "n=" << n << " k=" << k;
    }
  }
}

TEST(TopKTest, ZeroKMeansFullSortWithoutTruncation) {
  std::vector<int> v{3, 1, 2};
  TopKInPlace(v, 0, std::less<int>());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
}

TEST(TopKTest, SortRankedListTruncatesDeterministically) {
  ir::RankedList list{{5, 1.0}, {2, 2.0}, {9, 1.0}, {1, 2.0}, {7, 0.5}};
  ir::SortRankedList(list, 3);
  // score desc, doc asc on ties: (1,2.0) (2,2.0) (5,1.0).
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].doc, 1u);
  EXPECT_EQ(list[1].doc, 2u);
  EXPECT_EQ(list[2].doc, 5u);
}

// ------------------------------------------------------------ IDF hoist

TEST(IdfHoistTest, HoistedIdfScoresMatchPerPostingRecompute) {
  // The scoring loop computes Idf(N, n'_k) once per retrieved list and
  // accumulates wq * ntf * idf per posting. Recomputing the IDF inside the
  // posting loop must yield bit-identical sums: Idf is deterministic and
  // the association of the product is unchanged.
  Rng rng(7);
  const double corpus_size = 25000.0;
  for (int trial = 0; trial < 50; ++trial) {
    const size_t len = 1 + rng.NextUint64(200);
    std::vector<std::pair<uint32_t, double>> postings;  // (doc, ntf)
    for (size_t i = 0; i < len; ++i) {
      postings.emplace_back(
          static_cast<uint32_t>(rng.NextUint64(300)),
          static_cast<double>(1 + rng.NextUint64(9)) /
              static_cast<double>(10 + rng.NextUint64(90)));
    }

    std::unordered_map<uint32_t, double> hoisted, per_posting;
    const double idf =
        ir::Idf(corpus_size, static_cast<uint32_t>(postings.size()));
    const double wq = idf;
    for (const auto& [doc, ntf] : postings) {
      hoisted[doc] += wq * ntf * idf;
    }
    for (const auto& [doc, ntf] : postings) {
      const double inner_idf =
          ir::Idf(corpus_size, static_cast<uint32_t>(postings.size()));
      per_posting[doc] += inner_idf * ntf * inner_idf;
    }
    ASSERT_EQ(hoisted.size(), per_posting.size());
    for (const auto& [doc, sum] : hoisted) {
      // Exact double equality: same operations in the same order.
      EXPECT_EQ(sum, per_posting.at(doc)) << "trial " << trial;
    }
  }
}

// ------------------------------------- whole-system determinism (interned)

text::TermVector TV(const std::vector<std::string>& tokens) {
  return text::TermVector::FromTokens(tokens);
}

struct RunDump {
  std::string ranked;
  std::string metrics;
  std::string trace;
};

RunDump SeededRun(uint64_t seed) {
  corpus::Corpus corpus;
  corpus.AddDocument(
      TV({"cat", "cat", "cat", "feline", "feline", "whisker", "purr"}));
  corpus.AddDocument(
      TV({"dog", "dog", "dog", "canine", "canine", "leash", "bark"}));
  corpus.AddDocument(TV({"pet", "pet", "cat", "dog", "food"}));

  core::SpriteConfig config;
  config.num_peers = 16;
  config.initial_terms = 2;
  config.terms_per_iteration = 2;
  config.max_index_terms = 6;
  config.seed = seed;
  core::SpriteSystem system(config);
  system.mutable_tracer().set_enabled(true);
  SPRITE_CHECK_OK(system.ShareCorpus(corpus));
  system.RecordQuery(corpus::Query{1, {"cat", "dog"}});
  system.RunLearningIteration();

  RunDump dump;
  for (corpus::QueryId qid = 2; qid < 6; ++qid) {
    auto result =
        system.Search(corpus::Query{qid, {"cat", "dog", "pet"}}, 10, false);
    SPRITE_CHECK(result.ok());
    for (const ir::ScoredDoc& scored : *result) {
      dump.ranked += std::to_string(scored.doc) + ":" +
                     StrFormat("%.17g", scored.score) + ";";
    }
  }
  dump.metrics = system.metrics().Snapshot().ToJson();
  dump.trace = system.tracer().ToJsonl();
  return dump;
}

TEST(InternedDeterminismTest, IdenticalSeedsByteIdenticalOutputs) {
  const RunDump a = SeededRun(7);
  const RunDump b = SeededRun(7);
  EXPECT_EQ(a.ranked, b.ranked);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_FALSE(a.ranked.empty());
}

}  // namespace
}  // namespace sprite
