// Unit tests for src/corpus: documents, corpus statistics, queries,
// relevance judgments, the TSV loader, and the synthetic dataset generator.

#include <algorithm>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "corpus/loader.h"
#include "corpus/query.h"
#include "corpus/relevance.h"
#include "corpus/synthetic.h"
#include "text/analyzer.h"

namespace sprite::corpus {
namespace {

text::TermVector TV(const std::vector<std::string>& tokens) {
  return text::TermVector::FromTokens(tokens);
}

// ------------------------------------------------------------------ Query

TEST(QueryTest, CanonicalKeySortsTerms) {
  Query q{0, {"zebra", "apple", "mango"}};
  EXPECT_EQ(q.CanonicalKey(), "apple mango zebra");
}

TEST(QueryTest, CanonicalKeyIsOrderInvariant) {
  Query a{0, {"x", "y"}};
  Query b{1, {"y", "x"}};
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
}

TEST(QueryTest, ContainsTerm) {
  Query q{0, {"a", "b"}};
  EXPECT_TRUE(q.ContainsTerm("a"));
  EXPECT_FALSE(q.ContainsTerm("c"));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_FALSE(q.empty());
}

TEST(QueryTest, DedupTermsKeepsFirstOccurrenceOrder) {
  EXPECT_EQ(DedupTerms({"b", "a", "b", "c", "a"}),
            (std::vector<std::string>{"b", "a", "c"}));
  EXPECT_TRUE(DedupTerms({}).empty());
}

// ------------------------------------------------------------------ Corpus

TEST(CorpusTest, AddDocumentAssignsDenseIds) {
  Corpus corpus;
  EXPECT_EQ(corpus.AddDocument(TV({"a"})), 0u);
  EXPECT_EQ(corpus.AddDocument(TV({"b"})), 1u);
  EXPECT_EQ(corpus.num_docs(), 2u);
  EXPECT_EQ(corpus.doc(1).id, 1u);
}

TEST(CorpusTest, TermStatsAggregateAcrossDocuments) {
  Corpus corpus;
  corpus.AddDocument(TV({"cat", "cat", "dog"}));
  corpus.AddDocument(TV({"cat", "bird"}));
  TermStats cat = corpus.Stats("cat");
  EXPECT_EQ(cat.total_freq, 3u);
  EXPECT_EQ(cat.doc_freq, 2u);
  EXPECT_DOUBLE_EQ(cat.Distribution(), 6.0);
  EXPECT_EQ(corpus.DocFreq("dog"), 1u);
  EXPECT_EQ(corpus.DocFreq("absent"), 0u);
  EXPECT_EQ(corpus.total_tokens(), 5u);
}

TEST(CorpusTest, VocabularySortedAndComplete) {
  Corpus corpus;
  corpus.AddDocument(TV({"zebra", "apple"}));
  corpus.AddDocument(TV({"mango", "apple"}));
  EXPECT_EQ(corpus.Vocabulary(),
            (std::vector<std::string>{"apple", "mango", "zebra"}));
  EXPECT_EQ(corpus.vocabulary_size(), 3u);
}

TEST(CorpusTest, DocumentMetadata) {
  Corpus corpus;
  DocId id = corpus.AddDocument(TV({"x", "x", "y"}), "title-1");
  const Document& doc = corpus.doc(id);
  EXPECT_EQ(doc.title, "title-1");
  EXPECT_EQ(doc.length(), 3u);
  EXPECT_EQ(doc.num_distinct_terms(), 2u);
  EXPECT_TRUE(doc.ContainsTerm("y"));
  EXPECT_FALSE(doc.ContainsTerm("z"));
}

// -------------------------------------------------------------- Relevance

TEST(RelevanceTest, MarkAndQuery) {
  RelevanceJudgments judgments;
  judgments.MarkRelevant(1, 10);
  judgments.MarkRelevant(1, 11);
  judgments.MarkRelevant(2, 10);
  EXPECT_TRUE(judgments.IsRelevant(1, 10));
  EXPECT_FALSE(judgments.IsRelevant(1, 12));
  EXPECT_FALSE(judgments.IsRelevant(3, 10));
  EXPECT_EQ(judgments.NumRelevant(1), 2u);
  EXPECT_EQ(judgments.NumRelevant(3), 0u);
  EXPECT_EQ(judgments.num_queries(), 2u);
}

TEST(RelevanceTest, SetRelevantReplaces) {
  RelevanceJudgments judgments;
  judgments.MarkRelevant(1, 10);
  judgments.SetRelevant(1, {20, 21});
  EXPECT_FALSE(judgments.IsRelevant(1, 10));
  EXPECT_TRUE(judgments.IsRelevant(1, 20));
  EXPECT_EQ(judgments.NumRelevant(1), 2u);
}

TEST(RelevanceTest, RelevantSetOfUnknownQueryIsEmpty) {
  RelevanceJudgments judgments;
  EXPECT_TRUE(judgments.Relevant(42).empty());
}

// ------------------------------------------------------------------ Loader

TEST(LoaderTest, ParsesTsvString) {
  text::Analyzer analyzer;
  Corpus corpus;
  auto n = LoadCorpusFromTsvString(
      "doc1\tDogs are running fast\n"
      "# a comment line\n"
      "\n"
      "doc2\tCats sleeping quietly\n",
      analyzer, corpus);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 2u);
  EXPECT_EQ(corpus.num_docs(), 2u);
  EXPECT_EQ(corpus.doc(0).title, "doc1");
  EXPECT_TRUE(corpus.doc(0).ContainsTerm("dog"));   // stemmed
  EXPECT_TRUE(corpus.doc(1).ContainsTerm("sleep"));
}

TEST(LoaderTest, MissingTabIsCorruption) {
  text::Analyzer analyzer;
  Corpus corpus;
  auto n = LoadCorpusFromTsvString("no tab here\n", analyzer, corpus);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kCorruption);
}

TEST(LoaderTest, DocumentsWithOnlyStopwordsAreSkipped) {
  text::Analyzer analyzer;
  Corpus corpus;
  auto n = LoadCorpusFromTsvString("empty\tthe a is of\nreal\tdatabase\n",
                                   analyzer, corpus);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1u);
}

TEST(LoaderTest, MissingFileIsNotFound) {
  text::Analyzer analyzer;
  Corpus corpus;
  auto n = LoadCorpusFromTsv("/nonexistent/path.tsv", analyzer, corpus);
  ASSERT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsNotFound());
}

// --------------------------------------------------------------- Synthetic

SyntheticCorpusOptions SmallOptions(uint64_t seed = 42) {
  SyntheticCorpusOptions o;
  o.seed = seed;
  o.vocabulary_size = 2000;
  o.background_head = 50;
  o.num_topics = 8;
  o.topic_core_size = 60;
  o.num_docs = 300;
  o.num_base_queries = 8;
  o.min_doc_length = 30;
  o.max_doc_length = 400;
  return o;
}

TEST(SyntheticTest, TermNamesAreUniqueAndAlphabetic) {
  std::set<std::string> names;
  for (size_t i = 0; i < 5000; ++i) {
    std::string name = SyntheticCorpusGenerator::TermName(i);
    EXPECT_GE(name.size(), 6u);
    for (char c : name) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << name;
    }
    names.insert(std::move(name));
  }
  EXPECT_EQ(names.size(), 5000u);
}

TEST(SyntheticTest, GeneratesRequestedShape) {
  SyntheticDataset ds = SyntheticCorpusGenerator(SmallOptions()).Generate();
  EXPECT_EQ(ds.corpus.num_docs(), 300u);
  EXPECT_EQ(ds.base_queries.size(), 8u);
  EXPECT_EQ(ds.doc_primary_topic.size(), 300u);
  EXPECT_EQ(ds.query_topic.size(), 8u);
  for (uint32_t t : ds.doc_primary_topic) EXPECT_LT(t, 8u);
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  SyntheticDataset a = SyntheticCorpusGenerator(SmallOptions(7)).Generate();
  SyntheticDataset b = SyntheticCorpusGenerator(SmallOptions(7)).Generate();
  ASSERT_EQ(a.corpus.num_docs(), b.corpus.num_docs());
  for (size_t i = 0; i < a.corpus.num_docs(); ++i) {
    EXPECT_EQ(a.corpus.doc(i).terms.counts(), b.corpus.doc(i).terms.counts());
  }
  ASSERT_EQ(a.base_queries.size(), b.base_queries.size());
  for (size_t i = 0; i < a.base_queries.size(); ++i) {
    EXPECT_EQ(a.base_queries[i].terms, b.base_queries[i].terms);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticDataset a = SyntheticCorpusGenerator(SmallOptions(1)).Generate();
  SyntheticDataset b = SyntheticCorpusGenerator(SmallOptions(2)).Generate();
  bool any_diff = false;
  for (size_t i = 0; i < a.base_queries.size() && !any_diff; ++i) {
    any_diff = a.base_queries[i].terms != b.base_queries[i].terms;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, DocumentLengthsWithinBounds) {
  SyntheticCorpusOptions o = SmallOptions();
  SyntheticDataset ds = SyntheticCorpusGenerator(o).Generate();
  for (const Document& doc : ds.corpus.docs()) {
    EXPECT_GE(doc.length(), o.min_doc_length);
    EXPECT_LE(doc.length(), o.max_doc_length);
  }
}

TEST(SyntheticTest, QueriesHaveBoundedDistinctTerms) {
  SyntheticCorpusOptions o = SmallOptions();
  SyntheticDataset ds = SyntheticCorpusGenerator(o).Generate();
  for (const Query& q : ds.base_queries) {
    EXPECT_GE(q.size(), 1u);
    EXPECT_LE(q.size(), o.query_max_terms);
    std::set<std::string> unique(q.terms.begin(), q.terms.end());
    EXPECT_EQ(unique.size(), q.size());
  }
}

TEST(SyntheticTest, EveryQueryHasRelevantDocs) {
  SyntheticCorpusOptions o = SmallOptions();
  SyntheticDataset ds = SyntheticCorpusGenerator(o).Generate();
  for (const Query& q : ds.base_queries) {
    EXPECT_GE(ds.judgments.NumRelevant(q.id), o.min_relevant) << q.id;
  }
}

TEST(SyntheticTest, RelevantDocsContainAtLeastOneQueryTerm) {
  SyntheticDataset ds = SyntheticCorpusGenerator(SmallOptions()).Generate();
  for (const Query& q : ds.base_queries) {
    for (DocId d : ds.judgments.Relevant(q.id)) {
      const Document& doc = ds.corpus.doc(d);
      bool any = false;
      for (const auto& t : q.terms) any = any || doc.ContainsTerm(t);
      EXPECT_TRUE(any) << "query " << q.id << " doc " << d;
    }
  }
}

TEST(SyntheticTest, RelevantDocsAreTopicallyAffiliated) {
  SyntheticDataset ds = SyntheticCorpusGenerator(SmallOptions()).Generate();
  // Most relevant docs should have the query's topic as their primary
  // topic (a minority are secondary-topic documents).
  size_t total = 0, primary_match = 0;
  for (const Query& q : ds.base_queries) {
    for (DocId d : ds.judgments.Relevant(q.id)) {
      ++total;
      if (ds.doc_primary_topic[d] == ds.query_topic[q.id]) ++primary_match;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(primary_match) / static_cast<double>(total),
            0.5);
}

TEST(SyntheticTest, TermDistributionIsSkewed) {
  SyntheticDataset ds = SyntheticCorpusGenerator(SmallOptions()).Generate();
  std::vector<uint64_t> freqs;
  for (const std::string& t : ds.corpus.Vocabulary()) {
    freqs.push_back(ds.corpus.Stats(t).total_freq);
  }
  std::sort(freqs.rbegin(), freqs.rend());
  ASSERT_GT(freqs.size(), 100u);
  EXPECT_GT(freqs[0], 20 * freqs[freqs.size() / 2]);
}

TEST(SyntheticTest, QueriesContainCharacteristicHeadTerms) {
  // The bimodal query mix guarantees 1-2 head terms per query: every base
  // query must share at least one term with the aggregate top terms of its
  // topic's documents (the hook SPRITE's learning bootstraps from).
  SyntheticCorpusOptions o = SmallOptions();
  o.num_docs = 400;
  SyntheticDataset ds = SyntheticCorpusGenerator(o).Generate();

  // Aggregate per-topic term frequencies from primary-topic documents.
  std::vector<text::TermVector> topic_terms(o.num_topics);
  for (size_t d = 0; d < ds.corpus.num_docs(); ++d) {
    const uint32_t topic = ds.doc_primary_topic[d];
    for (const auto& [term, freq] : ds.corpus.doc(d).terms.counts()) {
      topic_terms[topic].Add(term, freq);
    }
  }
  for (const Query& q : ds.base_queries) {
    const uint32_t topic = ds.query_topic[q.id];
    auto top = topic_terms[topic].TopK(12);
    bool has_head = false;
    for (const auto& tf : top) {
      for (const auto& term : q.terms) has_head |= (term == tf.term);
    }
    EXPECT_TRUE(has_head) << "query " << q.id
                          << " has no characteristic head term";
  }
}

TEST(SyntheticTest, FocusMakesSomeTermsLocallyProminent) {
  // With per-document focus, some mid-rank topic terms must be much more
  // frequent in a few documents than their topic-wide average — the
  // "discriminative term" regime (DESIGN.md §7).
  auto count_prominent = [](const SyntheticDataset& ds) {
    size_t prominent = 0;
    for (const Document& doc : ds.corpus.docs()) {
      for (const auto& [term, freq] : doc.terms.counts()) {
        const TermStats stats = ds.corpus.Stats(term);
        const double avg = static_cast<double>(stats.total_freq) /
                           static_cast<double>(stats.doc_freq);
        if (stats.doc_freq >= 5 && freq >= 4 * avg) ++prominent;
      }
    }
    return prominent;
  };

  SyntheticCorpusOptions o = SmallOptions();
  o.num_docs = 300;
  const size_t with_focus =
      count_prominent(SyntheticCorpusGenerator(o).Generate());
  o.focus_share = 0.0;
  const size_t without_focus =
      count_prominent(SyntheticCorpusGenerator(o).Generate());
  EXPECT_GT(with_focus, 2 * without_focus + 10);
}

TEST(SyntheticTest, FocusShareZeroDisablesSpecialization) {
  SyntheticCorpusOptions o = SmallOptions();
  o.focus_share = 0.0;
  // Just a smoke check: generation succeeds and keeps its shape.
  SyntheticDataset ds = SyntheticCorpusGenerator(o).Generate();
  EXPECT_EQ(ds.corpus.num_docs(), o.num_docs);
}

TEST(SyntheticTest, QueryWindowClampsToSmallCores) {
  SyntheticCorpusOptions o = SmallOptions();
  o.topic_core_size = 10;  // smaller than the default query window
  o.focus_size = 5;
  o.query_max_terms = 4;
  SyntheticDataset ds = SyntheticCorpusGenerator(o).Generate();
  EXPECT_EQ(ds.base_queries.size(), o.num_base_queries);
  for (const Query& q : ds.base_queries) EXPECT_FALSE(q.terms.empty());
}

// Parameterized shape sweep across seeds.
class SyntheticSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SyntheticSeedSweep, ShapeInvariantsHoldForAnySeed) {
  SyntheticCorpusOptions o = SmallOptions(GetParam());
  o.num_docs = 120;
  SyntheticDataset ds = SyntheticCorpusGenerator(o).Generate();
  EXPECT_EQ(ds.corpus.num_docs(), 120u);
  for (const Query& q : ds.base_queries) {
    EXPECT_FALSE(q.terms.empty());
    EXPECT_GT(ds.judgments.NumRelevant(q.id), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace sprite::corpus
