// Tests for the paper's query generator (Section 6.1) and the workload
// helpers (train/test split, w/o-r and w-zipf streams, pattern groups).

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "corpus/synthetic.h"
#include "ir/centralized_index.h"
#include "querygen/query_generator.h"
#include "querygen/workload.h"

namespace sprite::querygen {
namespace {

class QueryGeneratorTest : public ::testing::Test {
 protected:
  QueryGeneratorTest() {
    corpus::SyntheticCorpusOptions o;
    o.seed = 11;
    o.vocabulary_size = 3000;
    o.background_head = 60;
    o.num_topics = 10;
    o.topic_core_size = 60;
    o.num_docs = 400;
    o.num_base_queries = 10;
    o.query_min_terms = 3;
    o.query_max_terms = 5;
    dataset_ = corpus::SyntheticCorpusGenerator(o).Generate();
    centralized_ =
        std::make_unique<ir::CentralizedIndex>(dataset_.corpus);
  }

  GeneratedWorkload Generate(QueryGeneratorOptions options = {}) {
    QueryGenerator generator(dataset_.corpus, *centralized_, options);
    return generator.Generate(dataset_.base_queries, dataset_.judgments);
  }

  corpus::SyntheticDataset dataset_;
  std::unique_ptr<ir::CentralizedIndex> centralized_;
};

TEST_F(QueryGeneratorTest, ProducesTenXQueries) {
  GeneratedWorkload w = Generate();
  // 10 originals x (1 + 9 derived) = 100, as in the paper's 63 -> 630.
  EXPECT_EQ(w.queries.size(), 100u);
  EXPECT_EQ(w.origin.size(), 100u);
  for (size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_EQ(w.queries[i].id, i);
  }
}

TEST_F(QueryGeneratorTest, OriginPointersAreConsistent) {
  GeneratedWorkload w = Generate();
  size_t originals = 0;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    const size_t o = w.origin[i];
    EXPECT_LE(o, i);
    EXPECT_EQ(w.origin[o], o);  // originals point at themselves
    if (o == i) ++originals;
  }
  EXPECT_EQ(originals, 10u);
}

TEST_F(QueryGeneratorTest, DerivedQueriesRespectOverlap) {
  QueryGeneratorOptions options;
  options.overlap = 0.7;
  GeneratedWorkload w = Generate(options);
  for (size_t i = 0; i < w.queries.size(); ++i) {
    if (w.origin[i] == i) continue;  // skip originals
    const corpus::Query& derived = w.queries[i];
    const corpus::Query& original = w.queries[w.origin[i]];
    size_t shared = 0;
    for (const auto& t : derived.terms) {
      if (original.ContainsTerm(t)) ++shared;
    }
    const size_t expect_keep = static_cast<size_t>(
        std::lround(0.7 * static_cast<double>(original.size())));
    // At least the kept fraction overlaps (replacements may coincide).
    EXPECT_GE(shared, std::max<size_t>(1, expect_keep)) << "query " << i;
    EXPECT_LE(derived.size(), original.size());
  }
}

TEST_F(QueryGeneratorTest, FullOverlapReproducesOriginalTerms) {
  QueryGeneratorOptions options;
  options.overlap = 1.0;
  GeneratedWorkload w = Generate(options);
  for (size_t i = 0; i < w.queries.size(); ++i) {
    if (w.origin[i] == i) continue;
    std::set<std::string> derived(w.queries[i].terms.begin(),
                                  w.queries[i].terms.end());
    std::set<std::string> original(w.queries[w.origin[i]].terms.begin(),
                                   w.queries[w.origin[i]].terms.end());
    EXPECT_EQ(derived, original) << i;
  }
}

TEST_F(QueryGeneratorTest, DerivedQueriesHaveJudgments) {
  GeneratedWorkload w = Generate();
  size_t with_judgments = 0;
  for (const auto& q : w.queries) {
    if (w.judgments.NumRelevant(q.id) > 0) ++with_judgments;
  }
  // Nearly all derived queries should inherit a non-empty relevant set.
  EXPECT_GT(with_judgments, w.queries.size() * 8 / 10);
}

TEST_F(QueryGeneratorTest, DerivedRelevantCountTracksOriginal) {
  // Property (b) of Section 6.1: result distribution follows the original
  // — an original with many answers yields derived queries with many.
  GeneratedWorkload w = Generate();
  for (size_t i = 0; i < w.queries.size(); ++i) {
    if (w.origin[i] == i) continue;
    const size_t original_count = w.judgments.NumRelevant(
        w.queries[w.origin[i]].id);
    const size_t derived_count = w.judgments.NumRelevant(w.queries[i].id);
    EXPECT_LE(derived_count, original_count + 5) << i;
  }
}

TEST_F(QueryGeneratorTest, SharedRelevantDocsExist) {
  // Property (a): derived queries ought to share relevant documents with
  // their original (that is what the training/testing split exploits).
  GeneratedWorkload w = Generate();
  size_t derived_total = 0, sharing = 0;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    if (w.origin[i] == i) continue;
    ++derived_total;
    const auto& orig_rel = w.judgments.Relevant(w.queries[w.origin[i]].id);
    for (corpus::DocId d : w.judgments.Relevant(w.queries[i].id)) {
      if (orig_rel.count(d) > 0) {
        ++sharing;
        break;
      }
    }
  }
  EXPECT_GT(sharing, derived_total / 2);
}

TEST_F(QueryGeneratorTest, DeterministicForSameSeed) {
  GeneratedWorkload a = Generate();
  GeneratedWorkload b = Generate();
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].terms, b.queries[i].terms);
  }
}

TEST_F(QueryGeneratorTest, SimilarTermsHaveNearbyDistribution) {
  QueryGenerator generator(dataset_.corpus, *centralized_, {});
  const std::string probe = dataset_.base_queries[0].terms[0];
  auto similar = generator.SimilarTerms(probe);
  ASSERT_EQ(similar.size(), 5u);
  const double target = dataset_.corpus.Stats(probe).Distribution();
  // All five neighbours must be closer to the target than the 50th nearest
  // possible value (sanity: they really are near-neighbours).
  std::vector<double> gaps;
  for (const std::string& term : dataset_.corpus.Vocabulary()) {
    if (term == probe) continue;
    gaps.push_back(
        std::abs(dataset_.corpus.Stats(term).Distribution() - target));
  }
  std::sort(gaps.begin(), gaps.end());
  const double bound = gaps[std::min<size_t>(gaps.size() - 1, 49)];
  for (const auto& s : similar) {
    EXPECT_NE(s, probe);
    EXPECT_LE(std::abs(dataset_.corpus.Stats(s).Distribution() - target),
              bound)
        << s;
  }
}

// ---------------------------------------------------------------- Workload

TEST(WorkloadTest, SplitTrainTestPartitions) {
  Rng rng(3);
  TrainTestSplit split = SplitTrainTest(100, 0.5, rng);
  EXPECT_EQ(split.train.size(), 50u);
  EXPECT_EQ(split.test.size(), 50u);
  std::set<size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(WorkloadTest, SplitFractionExtremes) {
  Rng rng(3);
  TrainTestSplit none = SplitTrainTest(10, 0.0, rng);
  EXPECT_TRUE(none.train.empty());
  EXPECT_EQ(none.test.size(), 10u);
  TrainTestSplit full = SplitTrainTest(10, 1.0, rng);
  EXPECT_EQ(full.train.size(), 10u);
  EXPECT_TRUE(full.test.empty());
}

TEST(WorkloadTest, StreamWithoutRepeatsIsPermutation) {
  Rng rng(5);
  std::vector<size_t> train{2, 4, 6, 8, 10};
  auto stream = MakeStreamWithoutRepeats(train, rng);
  EXPECT_EQ(stream.size(), train.size());
  std::multiset<size_t> a(stream.begin(), stream.end());
  std::multiset<size_t> b(train.begin(), train.end());
  EXPECT_EQ(a, b);
}

TEST(WorkloadTest, ZipfStreamDrawsOnlyTrainingQueries) {
  Rng rng(7);
  std::vector<size_t> train{1, 3, 5, 7};
  ZipfStream zs = MakeZipfStream(train, 200, 0.5, rng);
  EXPECT_EQ(zs.issuances.size(), 200u);
  for (size_t idx : zs.issuances) {
    EXPECT_TRUE(std::find(train.begin(), train.end(), idx) != train.end());
  }
  ASSERT_EQ(zs.weights.size(), train.size());
  double total = 0.0;
  for (double w : zs.weights) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(WorkloadTest, ZipfStreamIsSkewed) {
  Rng rng(9);
  std::vector<size_t> train(50);
  for (size_t i = 0; i < 50; ++i) train[i] = i;
  ZipfStream zs = MakeZipfStream(train, 5000, 1.0, rng);
  std::vector<size_t> counts(50, 0);
  for (size_t idx : zs.issuances) ++counts[idx];
  const size_t max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(max_count, 5000u / 50u * 3);  // heavily skewed vs uniform
}

TEST(WorkloadTest, ZipfStreamEmptyTrain) {
  Rng rng(1);
  ZipfStream zs = MakeZipfStream({}, 10, 0.5, rng);
  EXPECT_TRUE(zs.issuances.empty());
  EXPECT_TRUE(zs.weights.empty());
}

TEST_F(QueryGeneratorTest, SplitByOriginKeepsFamiliesTogether) {
  GeneratedWorkload w = Generate();
  Rng rng(13);
  PatternGroups groups = SplitByOrigin(w, rng);
  EXPECT_EQ(groups.group_a.size() + groups.group_b.size(),
            w.queries.size());
  std::unordered_set<size_t> a(groups.group_a.begin(), groups.group_a.end());
  for (size_t i : groups.group_a) {
    EXPECT_TRUE(a.count(w.origin[i]) > 0)
        << "derived query separated from its original";
  }
  // Both groups hold whole families: 5 originals each for 10 originals.
  EXPECT_EQ(groups.group_a.size(), 50u);
  EXPECT_EQ(groups.group_b.size(), 50u);
}

}  // namespace
}  // namespace sprite::querygen
