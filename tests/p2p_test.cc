// Unit tests for the P2P traffic accounting layer, plus the
// unreachable-peer regression of ISSUE 8: a probe to a departed peer must
// surface a *typed* DeadlineExceeded through the transport seam, honor the
// SpriteConfig retry/backoff knobs, and keep the default (retries = 0)
// accounting byte-identical to what the accountant always charged.

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/sprite_system.h"
#include "corpus/corpus.h"
#include "corpus/query.h"
#include "p2p/message.h"
#include "p2p/network.h"
#include "text/term_vector.h"

namespace sprite::p2p {
namespace {

TEST(MessageTest, NamesAreStable) {
  EXPECT_EQ(MessageTypeName(MessageType::kPublishTerm), "PublishTerm");
  EXPECT_EQ(MessageTypeName(MessageType::kLookupHop), "LookupHop");
  EXPECT_EQ(MessageTypeName(MessageType::kPollResponse), "PollResponse");
}

TEST(NetworkStatsTest, StartsEmpty) {
  NetworkStats stats;
  EXPECT_EQ(stats.TotalMessages(), 0u);
  EXPECT_EQ(stats.TotalBytes(), 0u);
}

TEST(NetworkAccountantTest, CountAddsHeaderBytes) {
  NetworkAccountant net;
  net.Count(MessageType::kPublishTerm, 100);
  EXPECT_EQ(net.stats().MessagesOf(MessageType::kPublishTerm), 1u);
  EXPECT_EQ(net.stats().BytesOf(MessageType::kPublishTerm),
            kMessageHeaderBytes + 100);
}

TEST(NetworkAccountantTest, LookupHopsCountPerHop) {
  NetworkAccountant net;
  net.CountLookupHops(3);
  net.CountLookupHops(0);   // no-op
  net.CountLookupHops(-1);  // no-op
  EXPECT_EQ(net.stats().MessagesOf(MessageType::kLookupHop), 3u);
  EXPECT_EQ(net.stats().BytesOf(MessageType::kLookupHop),
            3 * kLookupHopBytes);
}

TEST(NetworkAccountantTest, TotalsAggregateAcrossTypes) {
  NetworkAccountant net;
  net.Count(MessageType::kQueryRequest, 10);
  net.Count(MessageType::kQueryResponse, 20);
  net.CountLookupHops(2);
  EXPECT_EQ(net.stats().TotalMessages(), 4u);
  EXPECT_EQ(net.stats().TotalBytes(),
            2 * kMessageHeaderBytes + 30 + 2 * kLookupHopBytes);
}

TEST(NetworkAccountantTest, ClearResets) {
  NetworkAccountant net;
  net.Count(MessageType::kReplicate, 5);
  net.Clear();
  EXPECT_EQ(net.stats().TotalMessages(), 0u);
}

TEST(NetworkStatsTest, ToStringListsNonZeroRowsAndTotal) {
  NetworkAccountant net;
  net.Count(MessageType::kHeartbeat, 1);
  const std::string table = net.stats().ToString();
  EXPECT_NE(table.find("Heartbeat"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
  EXPECT_EQ(table.find("Replicate"), std::string::npos);  // zero row hidden
}

// --- Unreachable-peer regression (ISSUE 8) ------------------------------

struct DeadPeerRun {
  uint64_t timeouts = 0;
  uint64_t retries = 0;
  uint64_t version_check_messages = 0;
};

// Warms a result cache whose entry is sourced at the peer responsible for
// "cat", abruptly fails that peer, then keeps querying: every validated
// hit at a previously warmed querying peer probes the dead source. Returns
// the transport-layer counters of the post-failure phase.
DeadPeerRun RunDeadPeerScenario(size_t send_retries) {
  core::SpriteConfig config;
  config.num_peers = 16;
  config.initial_terms = 2;
  config.terms_per_iteration = 2;
  config.max_index_terms = 6;
  config.enable_result_cache = true;
  config.enable_posting_cache = true;
  config.cache_validate = true;
  config.send_retries = send_retries;

  corpus::Corpus corpus;
  corpus.AddDocument(text::TermVector::FromTokens(
      {"cat", "cat", "cat", "feline", "whisker", "purr"}));
  corpus.AddDocument(text::TermVector::FromTokens(
      {"dog", "dog", "dog", "canine", "leash", "bark"}));
  corpus.AddDocument(
      text::TermVector::FromTokens({"pet", "cat", "dog", "food"}));

  core::SpriteSystem system(config);
  EXPECT_TRUE(system.ShareCorpus(corpus).ok());
  const corpus::Query query{1, {"cat", "dog"}};
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(system.Search(query, 10, /*record=*/false).ok());
  }
  EXPECT_EQ(system.transport_stats().TotalTimeouts(), 0u);

  const uint64_t key = system.ring().space().KeyForString("cat");
  EXPECT_TRUE(
      system.FailPeer(system.ring().ResponsibleNode(key).value()).ok());
  for (int i = 0; i < 20; ++i) {
    // The departed source never fails the query: the stale entry is
    // rejected and refetched from the ring's new responsible peer.
    EXPECT_TRUE(system.Search(query, 10, /*record=*/false).ok());
  }

  DeadPeerRun run;
  run.timeouts = system.transport_stats().TotalTimeouts();
  run.retries = system.transport_stats().TotalRetries();
  run.version_check_messages =
      system.network_stats().MessagesOf(MessageType::kVersionCheck);
  return run;
}

TEST(UnreachablePeerTest, DefaultsKeepLegacyAccountingAndSurfaceTimeouts) {
  const DeadPeerRun run = RunDeadPeerScenario(/*send_retries=*/0);
  // The dead probes are visible as typed transport timeouts...
  EXPECT_GT(run.timeouts, 0u);
  // ...and with the default send_retries = 0 nothing is retried, so the
  // accountant's view stays exactly one request (and no response) per dead
  // probe — the charge the simulation has always used.
  EXPECT_EQ(run.retries, 0u);
}

TEST(UnreachablePeerTest, RetryKnobsChargeEveryAttempt) {
  const DeadPeerRun baseline = RunDeadPeerScenario(/*send_retries=*/0);
  const DeadPeerRun retried = RunDeadPeerScenario(/*send_retries=*/2);
  // The workload is deterministic, so both runs hit the dead peer the same
  // number of times; the retried run books two extra attempts per probe.
  EXPECT_EQ(retried.timeouts, baseline.timeouts);
  EXPECT_EQ(retried.retries, 2 * retried.timeouts);
  EXPECT_EQ(retried.version_check_messages,
            baseline.version_check_messages + 2 * baseline.timeouts);
}

}  // namespace
}  // namespace sprite::p2p
