// Unit tests for the P2P traffic accounting layer.

#include <gtest/gtest.h>

#include "p2p/message.h"
#include "p2p/network.h"

namespace sprite::p2p {
namespace {

TEST(MessageTest, NamesAreStable) {
  EXPECT_EQ(MessageTypeName(MessageType::kPublishTerm), "PublishTerm");
  EXPECT_EQ(MessageTypeName(MessageType::kLookupHop), "LookupHop");
  EXPECT_EQ(MessageTypeName(MessageType::kPollResponse), "PollResponse");
}

TEST(NetworkStatsTest, StartsEmpty) {
  NetworkStats stats;
  EXPECT_EQ(stats.TotalMessages(), 0u);
  EXPECT_EQ(stats.TotalBytes(), 0u);
}

TEST(NetworkAccountantTest, CountAddsHeaderBytes) {
  NetworkAccountant net;
  net.Count(MessageType::kPublishTerm, 100);
  EXPECT_EQ(net.stats().MessagesOf(MessageType::kPublishTerm), 1u);
  EXPECT_EQ(net.stats().BytesOf(MessageType::kPublishTerm),
            kMessageHeaderBytes + 100);
}

TEST(NetworkAccountantTest, LookupHopsCountPerHop) {
  NetworkAccountant net;
  net.CountLookupHops(3);
  net.CountLookupHops(0);   // no-op
  net.CountLookupHops(-1);  // no-op
  EXPECT_EQ(net.stats().MessagesOf(MessageType::kLookupHop), 3u);
  EXPECT_EQ(net.stats().BytesOf(MessageType::kLookupHop),
            3 * kLookupHopBytes);
}

TEST(NetworkAccountantTest, TotalsAggregateAcrossTypes) {
  NetworkAccountant net;
  net.Count(MessageType::kQueryRequest, 10);
  net.Count(MessageType::kQueryResponse, 20);
  net.CountLookupHops(2);
  EXPECT_EQ(net.stats().TotalMessages(), 4u);
  EXPECT_EQ(net.stats().TotalBytes(),
            2 * kMessageHeaderBytes + 30 + 2 * kLookupHopBytes);
}

TEST(NetworkAccountantTest, ClearResets) {
  NetworkAccountant net;
  net.Count(MessageType::kReplicate, 5);
  net.Clear();
  EXPECT_EQ(net.stats().TotalMessages(), 0u);
}

TEST(NetworkStatsTest, ToStringListsNonZeroRowsAndTotal) {
  NetworkAccountant net;
  net.Count(MessageType::kHeartbeat, 1);
  const std::string table = net.stats().ToString();
  EXPECT_NE(table.find("Heartbeat"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
  EXPECT_EQ(table.find("Replicate"), std::string::npos);  // zero row hidden
}

}  // namespace
}  // namespace sprite::p2p
