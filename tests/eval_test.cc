// Tests for the experiment harness: test-bed construction, training, and
// evaluation plumbing on a reduced-scale dataset.

#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace sprite::eval {
namespace {

ExperimentOptions SmallExperiment() {
  ExperimentOptions o;
  o.corpus.seed = 21;
  o.corpus.vocabulary_size = 3000;
  o.corpus.background_head = 60;
  o.corpus.num_topics = 10;
  o.corpus.topic_core_size = 60;
  o.corpus.num_docs = 400;
  o.corpus.num_base_queries = 10;
  o.corpus.query_min_terms = 3;
  o.corpus.query_max_terms = 5;
  o.generator.rank_cutoff = 200;
  return o;
}

core::SpriteConfig SmallSprite() {
  core::SpriteConfig c;
  c.num_peers = 32;
  c.initial_terms = 5;
  c.terms_per_iteration = 5;
  c.max_index_terms = 20;
  return c;
}

class EvalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bed_ = new TestBed(TestBed::Build(SmallExperiment()));
  }
  static void TearDownTestSuite() {
    delete bed_;
    bed_ = nullptr;
  }
  static TestBed* bed_;
};

TestBed* EvalTest::bed_ = nullptr;

TEST_F(EvalTest, BedHasExpectedShape) {
  EXPECT_EQ(bed_->corpus().num_docs(), 400u);
  EXPECT_EQ(bed_->workload().queries.size(), 100u);
  EXPECT_EQ(bed_->split().train.size(), 50u);
  EXPECT_EQ(bed_->split().test.size(), 50u);
  EXPECT_EQ(bed_->centralized().num_docs(), 400u);
}

TEST_F(EvalTest, TrainSystemSharesEverythingAndLearns) {
  core::SpriteSystem system(SmallSprite());
  ASSERT_TRUE(TrainSystem(system, *bed_, bed_->split().train, 3).ok());
  EXPECT_EQ(system.current_seq(), bed_->split().train.size());
  // 5 initial + 3x5 learned, capped by what was actually learnable.
  const auto* terms = system.IndexTermsOf(0);
  ASSERT_NE(terms, nullptr);
  EXPECT_GE(terms->size(), 5u);
  EXPECT_LE(terms->size(), 20u);
}

TEST_F(EvalTest, EvaluateProducesRatiosInRange) {
  core::SpriteSystem system(SmallSprite());
  ASSERT_TRUE(TrainSystem(system, *bed_, bed_->split().train, 3).ok());
  EvalResult r = EvaluateSystem(system, *bed_, bed_->split().test, 20);
  EXPECT_GE(r.system.precision, 0.0);
  EXPECT_LE(r.system.precision, 1.0);
  EXPECT_GE(r.centralized.precision, 0.0);
  EXPECT_LE(r.centralized.precision, 1.0);
  EXPECT_GT(r.centralized.recall, 0.0) << "centralized must find something";
  EXPECT_GE(r.ratio.precision, 0.0);
  // A 20-term P2P index cannot beat perfect global knowledge by much;
  // allow slack for small-sample noise.
  EXPECT_LE(r.ratio.precision, 1.3);
}

TEST_F(EvalTest, LearningImprovesOverNoLearning) {
  core::SpriteConfig cold_config = SmallSprite();
  core::SpriteSystem cold(cold_config);
  ASSERT_TRUE(TrainSystem(cold, *bed_, bed_->split().train, 0).ok());
  EvalResult no_learning =
      EvaluateSystem(cold, *bed_, bed_->split().test, 20);

  core::SpriteSystem warm(SmallSprite());
  ASSERT_TRUE(TrainSystem(warm, *bed_, bed_->split().train, 3).ok());
  EvalResult learned = EvaluateSystem(warm, *bed_, bed_->split().test, 20);

  EXPECT_GE(learned.system.recall, no_learning.system.recall);
}

TEST_F(EvalTest, WeightedEvaluationUsesWeights) {
  core::SpriteSystem system(SmallSprite());
  ASSERT_TRUE(TrainSystem(system, *bed_, bed_->split().train, 1).ok());
  const std::vector<size_t> queries{bed_->split().test[0],
                                    bed_->split().test[1]};
  // All weight on the first query == evaluating only the first query.
  std::vector<double> w{1.0, 0.0};
  EvalResult weighted = EvaluateSystem(system, *bed_, queries, 20, &w);
  EvalResult only_first =
      EvaluateSystem(system, *bed_, {queries[0]}, 20);
  EXPECT_DOUBLE_EQ(weighted.system.precision, only_first.system.precision);
  EXPECT_DOUBLE_EQ(weighted.centralized.recall, only_first.centralized.recall);
}

TEST_F(EvalTest, DeterministicAcrossRuns) {
  core::SpriteSystem a(SmallSprite());
  ASSERT_TRUE(TrainSystem(a, *bed_, bed_->split().train, 2).ok());
  EvalResult ra = EvaluateSystem(a, *bed_, bed_->split().test, 20);

  core::SpriteSystem b(SmallSprite());
  ASSERT_TRUE(TrainSystem(b, *bed_, bed_->split().train, 2).ok());
  EvalResult rb = EvaluateSystem(b, *bed_, bed_->split().test, 20);

  EXPECT_DOUBLE_EQ(ra.system.precision, rb.system.precision);
  EXPECT_DOUBLE_EQ(ra.system.recall, rb.system.recall);
}

}  // namespace
}  // namespace sprite::eval
