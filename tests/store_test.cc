// Tests for src/store: the compressed posting codec (delta+varint blocks
// with skip entries), the immutable StoredPostings wrapper the peers hold,
// and the durable per-peer segment store (mmap + CRC validation, manifest
// replay, delta flushes, compaction). The corruption cases assert the
// typed kCorruption contract: damaged bytes must never decode.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "store/peer_store.h"
#include "store/postings.h"
#include "store/segment.h"
#include "store/stored_postings.h"
#include "store/varint.h"

namespace sprite::store {
namespace {

PostingEntry Posting(DocId doc, uint64_t owner = 99, uint32_t tf = 1,
                     uint32_t len = 10, uint32_t distinct = 5) {
  return PostingEntry{doc, owner, tf, len, distinct};
}

// Field-wise equality: PostingEntry has padding, so memcmp is unreliable.
bool SameEntry(const PostingEntry& a, const PostingEntry& b) {
  return a.doc == b.doc && a.owner == b.owner && a.term_freq == b.term_freq &&
         a.doc_length == b.doc_length &&
         a.num_distinct_terms == b.num_distinct_terms;
}

bool SameEntries(const PostingList& a, const PostingList& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameEntry(a[i], b[i])) return false;
  }
  return true;
}

// Encode + Parse + DecodeAll must reproduce the input bit for bit.
void ExpectRoundTrip(const PostingList& list, size_t block_size) {
  StatusOr<std::vector<uint8_t>> blob = EncodePostings(list, block_size);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  StatusOr<CompressedPostingsPtr> parsed =
      CompressedPostings::Parse(BytesRef::Own(std::move(blob).value()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const CompressedPostings& cp = **parsed;
  EXPECT_EQ(cp.size(), list.size());
  PostingList decoded;
  ASSERT_TRUE(cp.DecodeAll(&decoded).ok());
  EXPECT_TRUE(SameEntries(decoded, list));
  // FindDoc agrees entry by entry.
  for (const PostingEntry& want : list) {
    PostingEntry got;
    ASSERT_TRUE(cp.FindDoc(want.doc, &got)) << want.doc;
    EXPECT_TRUE(SameEntry(want, got)) << want.doc;
  }
}

// --- Codec ---------------------------------------------------------------

TEST(VarintTest, RoundTripsBoundaryValues) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                     0xFFFFFFFFull, ~0ull}) {
    std::vector<uint8_t> buf;
    PutVarint64(buf, v);
    EXPECT_EQ(buf.size(), VarintLength(v));
    size_t pos = 0;
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, RejectsTruncation) {
  std::vector<uint8_t> buf;
  PutVarint64(buf, ~0ull);
  for (size_t limit = 0; limit < buf.size(); ++limit) {
    size_t pos = 0;
    uint64_t out = 0;
    EXPECT_FALSE(GetVarint64(buf.data(), limit, &pos, &out)) << limit;
  }
}

TEST(PostingCodecTest, RoundTripsEmptyList) { ExpectRoundTrip({}, 64); }

TEST(PostingCodecTest, RoundTripsSingleEntry) {
  ExpectRoundTrip({Posting(42, 0xDEADBEEFCAFEF00DULL, 3, 17, 9)}, 64);
}

TEST(PostingCodecTest, RoundTripsMaxGapsAndFieldExtremes) {
  // Largest representable doc (kInvalidDocId is the sentinel and stays
  // unencodable) reached in one maximal gap, with every u32 field at max.
  const DocId max_doc = p2p::kInvalidDocId - 1;
  ExpectRoundTrip({Posting(0, 1, ~0u, ~0u, ~0u),
                   Posting(max_doc, ~0ull, ~0u, ~0u, ~0u)},
                  64);
}

TEST(PostingCodecTest, RoundTripsAcrossBlockBoundaries) {
  PostingList list;
  for (DocId d = 0; d < 300; ++d) {
    list.push_back(Posting(d * 7 + 1, /*owner=*/d % 5, d % 13 + 1));
  }
  for (size_t block_size : {1u, 3u, 64u, 1024u}) {
    ExpectRoundTrip(list, block_size);
  }
  // FindDoc misses between and beyond entries.
  StatusOr<std::vector<uint8_t>> blob = EncodePostings(list, 64);
  ASSERT_TRUE(blob.ok());
  StatusOr<CompressedPostingsPtr> parsed =
      CompressedPostings::Parse(BytesRef::Own(std::move(blob).value()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE((*parsed)->FindDoc(2, nullptr));         // between docs
  EXPECT_FALSE((*parsed)->FindDoc(300 * 7 + 1, nullptr));  // past the end
}

TEST(PostingCodecTest, RejectsNonMonotonicDocIds) {
  StatusOr<std::vector<uint8_t>> unsorted =
      EncodePostings({Posting(5), Posting(3)}, 64);
  EXPECT_TRUE(unsorted.status().IsInvalidArgument());
  StatusOr<std::vector<uint8_t>> duplicate =
      EncodePostings({Posting(5), Posting(5)}, 64);
  EXPECT_TRUE(duplicate.status().IsInvalidArgument());
  StatusOr<std::vector<uint8_t>> sentinel =
      EncodePostings({Posting(p2p::kInvalidDocId)}, 64);
  EXPECT_TRUE(sentinel.status().IsInvalidArgument());
  EXPECT_TRUE(EncodePostings({Posting(1)}, 0).status().IsInvalidArgument());
}

TEST(PostingCodecTest, ParseRejectsDamage) {
  PostingList list;
  for (DocId d = 0; d < 100; ++d) list.push_back(Posting(d * 3 + 2));
  StatusOr<std::vector<uint8_t>> encoded = EncodePostings(list, 16);
  ASSERT_TRUE(encoded.ok());
  const std::vector<uint8_t> good = std::move(encoded).value();

  {  // Bad magic.
    std::vector<uint8_t> bad = good;
    bad[0] ^= 0xFF;
    StatusOr<CompressedPostingsPtr> parsed =
        CompressedPostings::Parse(BytesRef::Own(std::move(bad)));
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
  }
  // Truncation anywhere in the header/tables must fail Parse (payload
  // truncation shortens a block extent, which Parse's exact-cover check
  // also catches).
  for (size_t len = 0; len < good.size(); ++len) {
    std::vector<uint8_t> bad(good.begin(), good.begin() + len);
    StatusOr<CompressedPostingsPtr> parsed =
        CompressedPostings::Parse(BytesRef::Own(std::move(bad)));
    EXPECT_FALSE(parsed.ok()) << "prefix length " << len;
  }
}

// --- StoredPostings ------------------------------------------------------

TEST(StoredPostingsTest, UpsertEraseRoundTripAndSealing) {
  StoreOptions options;
  options.block_size = 8;
  options.compress_min_entries = 4;
  StoredPostingsPtr stored = StoredPostings::Empty(options);
  // Ascending appends: the peers' publish order.
  for (DocId d = 0; d < 64; ++d) {
    bool changed = false;
    stored = stored->Upserted(Posting(d, d % 3, d + 1), &changed);
    EXPECT_TRUE(changed);
  }
  EXPECT_EQ(stored->size(), 64u);
  // Long sorted runs seal into compressed blocks: the resident encoding
  // must be smaller than the raw vector it replaces.
  EXPECT_LT(stored->encoded_bytes(), stored->raw_bytes());

  // Idempotent re-publish: same entry, no change, same object.
  bool changed = true;
  StoredPostingsPtr again = stored->Upserted(Posting(7, 7 % 3, 8), &changed);
  EXPECT_FALSE(changed);
  EXPECT_EQ(again.get(), stored.get());

  // In-place overwrite inside the sealed range.
  StoredPostingsPtr updated = stored->Upserted(Posting(7, 1, 99), &changed);
  EXPECT_TRUE(changed);
  PostingEntry got;
  ASSERT_TRUE(updated->FindDoc(7, &got));
  EXPECT_EQ(got.term_freq, 99u);
  EXPECT_EQ(updated->size(), 64u);

  // Erase from the middle; absent erase returns the same object.
  bool erased = false;
  StoredPostingsPtr shrunk = updated->Erased(30, &erased);
  EXPECT_TRUE(erased);
  EXPECT_EQ(shrunk->size(), 63u);
  EXPECT_FALSE(shrunk->FindDoc(30, nullptr));
  StoredPostingsPtr same = shrunk->Erased(30, &erased);
  EXPECT_FALSE(erased);
  EXPECT_EQ(same.get(), shrunk.get());
}

TEST(StoredPostingsTest, SnapshotIsMemoizedAndFrozen) {
  StoreOptions options;
  options.block_size = 4;
  options.compress_min_entries = 4;
  StoredPostingsPtr stored = StoredPostings::FromSortedList(
      {Posting(1), Posting(2), Posting(3), Posting(4), Posting(5)}, options);
  std::shared_ptr<const PostingList> snap = stored->Snapshot();
  ASSERT_EQ(snap->size(), 5u);
  // Memoized: the same object hands out the same pointer.
  EXPECT_EQ(stored->Snapshot().get(), snap.get());
  // Functional mutation leaves the old snapshot untouched.
  bool changed = false;
  StoredPostingsPtr next = stored->Upserted(Posting(6), &changed);
  EXPECT_EQ(snap->size(), 5u);
  EXPECT_EQ(next->Snapshot()->size(), 6u);
}

TEST(StoredPostingsTest, OutOfOrderUpsertStaysSorted) {
  StoreOptions options;
  options.block_size = 4;
  options.compress_min_entries = 4;
  StoredPostingsPtr stored = StoredPostings::Empty(options);
  bool changed = false;
  for (DocId d : {9, 1, 5, 3, 7, 2, 8, 4, 6}) {
    stored = stored->Upserted(Posting(d), &changed);
  }
  const std::shared_ptr<const PostingList> snap = stored->Snapshot();
  ASSERT_EQ(snap->size(), 9u);
  for (size_t i = 1; i < snap->size(); ++i) {
    EXPECT_LT((*snap)[i - 1].doc, (*snap)[i].doc);
  }
}

TEST(StoredPostingsTest, SameContentIgnoresRepresentation) {
  StoreOptions sealing;
  sealing.block_size = 4;
  sealing.compress_min_entries = 2;
  StoreOptions raw_only;
  raw_only.block_size = 4;
  raw_only.compress_min_entries = 1000;  // never seals
  PostingList list;
  for (DocId d = 0; d < 16; ++d) list.push_back(Posting(d));
  StoredPostingsPtr sealed = StoredPostings::FromSortedList(list, sealing);
  StoredPostingsPtr raw = StoredPostings::FromSortedList(list, raw_only);
  EXPECT_TRUE(sealed->SameContent(*raw));
  bool changed = false;
  EXPECT_FALSE(sealed->SameContent(*raw->Upserted(Posting(99), &changed)));
}

// --- Segments + PeerStore ------------------------------------------------

class StoreDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/sprite-store-test-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  // The store directory of `peer` under dir_, as PeerStore lays it out.
  std::string PeerDir(const char* name) const { return dir_ + "/" + name; }

  std::string dir_;
};

StoredPostingsPtr MakeList(size_t entries, uint64_t owner) {
  PostingList list;
  for (DocId d = 0; d < entries; ++d) {
    list.push_back(Posting(d * 2 + 1, owner, d % 7 + 1));
  }
  return StoredPostings::FromSortedList(std::move(list), StoreOptions{});
}

std::vector<PeerStore::TermState> MakeLive(
    const std::vector<std::pair<std::string, uint64_t>>& terms,
    size_t entries = 20) {
  std::vector<PeerStore::TermState> live;
  for (const auto& [term, version] : terms) {
    PeerStore::TermState state;
    state.term = term;
    state.version = version;
    state.postings = MakeList(entries, /*owner=*/7);
    live.push_back(std::move(state));
  }
  return live;
}

TEST_F(StoreDirTest, FlushRecoverRoundTrip) {
  const p2p::PeerId peer = 0x1234;
  {
    PeerStore store(PeerDir("p"), peer, StoreOptions{}, 4);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(
        store.Flush(MakeLive({{"cat", 3}, {"dog", 1}, {"emu", 2}})).ok());
  }
  PeerStore reopened(PeerDir("p"), peer, StoreOptions{}, 4);
  ASSERT_TRUE(reopened.Open().ok());
  std::vector<PeerStore::TermState> recovered = reopened.TakeRecovered();
  ASSERT_EQ(recovered.size(), 3u);
  EXPECT_EQ(recovered[0].term, "cat");
  EXPECT_EQ(recovered[0].version, 3u);
  EXPECT_EQ(recovered[1].term, "dog");
  EXPECT_EQ(recovered[2].term, "emu");
  const StoredPostingsPtr reference = MakeList(20, 7);
  for (const PeerStore::TermState& state : recovered) {
    EXPECT_TRUE(state.postings->SameContent(*reference)) << state.term;
  }
}

TEST_F(StoreDirTest, DeltaFlushesTombstonesAndCompaction) {
  const p2p::PeerId peer = 9;
  PeerStore store(PeerDir("p"), peer, StoreOptions{}, /*compact_threshold=*/3);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Flush(MakeLive({{"cat", 1}, {"dog", 1}})).ok());
  EXPECT_EQ(store.segment_count(), 1u);
  // Unchanged flush: no new segment.
  ASSERT_TRUE(store.Flush(MakeLive({{"cat", 1}, {"dog", 1}})).ok());
  EXPECT_EQ(store.segment_count(), 1u);
  // cat changes, dog vanishes (tombstone), emu appears.
  ASSERT_TRUE(store.Flush(MakeLive({{"cat", 2}, {"emu", 1}})).ok());
  EXPECT_EQ(store.segment_count(), 2u);
  // Third flush crosses the threshold: compacts to one full segment.
  ASSERT_TRUE(store.Flush(MakeLive({{"cat", 3}, {"emu", 1}})).ok());
  ASSERT_TRUE(store.Flush(MakeLive({{"cat", 4}, {"emu", 1}})).ok());
  EXPECT_EQ(store.segment_count(), 1u);

  PeerStore reopened(PeerDir("p"), peer, StoreOptions{}, 3);
  ASSERT_TRUE(reopened.Open().ok());
  std::vector<PeerStore::TermState> recovered = reopened.TakeRecovered();
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].term, "cat");
  EXPECT_EQ(recovered[0].version, 4u);
  EXPECT_EQ(recovered[1].term, "emu");
}

TEST_F(StoreDirTest, FlushBytesAreDeterministic) {
  // Same live state, fresh directories: byte-identical segments — the
  // property the CI storage smoke's cmp relies on.
  for (const char* name : {"a", "b"}) {
    PeerStore store(PeerDir(name), 5, StoreOptions{}, 4);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Flush(MakeLive({{"cat", 1}, {"dog", 2}})).ok());
  }
  for (const char* file : {"MANIFEST", "seg-000001.dat"}) {
    std::FILE* a = std::fopen((PeerDir("a") + "/" + file).c_str(), "rb");
    std::FILE* b = std::fopen((PeerDir("b") + "/" + file).c_str(), "rb");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    for (;;) {
      const int ca = std::fgetc(a);
      const int cb = std::fgetc(b);
      ASSERT_EQ(ca, cb) << file;
      if (ca == EOF) break;
    }
    std::fclose(a);
    std::fclose(b);
  }
}

TEST_F(StoreDirTest, CorruptSegmentsSurfaceTypedCorruption) {
  const p2p::PeerId peer = 11;
  {
    PeerStore store(PeerDir("p"), peer, StoreOptions{}, 4);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Flush(MakeLive({{"cat", 1}, {"dog", 1}})).ok());
  }
  const std::string seg = PeerDir("p") + "/seg-000001.dat";

  // Read the pristine image once.
  std::FILE* f = std::fopen(seg.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> image;
  int c;
  while ((c = std::fgetc(f)) != EOF) image.push_back(static_cast<uint8_t>(c));
  std::fclose(f);
  ASSERT_GT(image.size(), 16u);

  const auto write_seg = [&seg](const std::vector<uint8_t>& bytes) {
    std::FILE* out = std::fopen(seg.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    if (!bytes.empty()) {
      ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out), bytes.size());
    }
    ASSERT_EQ(std::fclose(out), 0);
  };
  const auto expect_corrupt = [this, peer]() {
    PeerStore store(PeerDir("p"), peer, StoreOptions{}, 4);
    const Status opened = store.Open();
    EXPECT_EQ(opened.code(), StatusCode::kCorruption) << opened.ToString();
  };

  // One flipped bit in the middle: the CRC footer must catch it before any
  // record parses.
  std::vector<uint8_t> flipped = image;
  flipped[image.size() / 2] ^= 0x01;
  write_seg(flipped);
  expect_corrupt();

  // Truncation: drop the last 5 bytes (footer damage) and harder, half the
  // file.
  write_seg(std::vector<uint8_t>(image.begin(), image.end() - 5));
  expect_corrupt();
  write_seg(std::vector<uint8_t>(image.begin(),
                                 image.begin() + image.size() / 2));
  expect_corrupt();

  // A vanished segment still listed by the manifest.
  ASSERT_EQ(std::remove(seg.c_str()), 0);
  expect_corrupt();

  // Restored pristine bytes open cleanly again.
  write_seg(image);
  PeerStore store(PeerDir("p"), peer, StoreOptions{}, 4);
  EXPECT_TRUE(store.Open().ok());
  EXPECT_EQ(store.TakeRecovered().size(), 2u);
}

TEST_F(StoreDirTest, ReadSegmentRejectsWrongPeerAndManifestCrc) {
  std::vector<SegmentRecordIn> records;
  SegmentRecordIn record;
  record.term = "cat";
  record.version = 1;
  record.blob = *EncodePostings({Posting(1), Posting(2)}, 64);
  records.push_back(std::move(record));
  const std::vector<uint8_t> image = BuildSegment(/*peer_id=*/42, records);
  const std::string path = dir_ + "/seg.dat";
  ASSERT_TRUE(WriteFileAtomic(path, image).ok());

  EXPECT_TRUE(ReadSegment(path, 42, nullptr).ok());
  // Wrong owning peer.
  EXPECT_EQ(ReadSegment(path, 43, nullptr).status().code(),
            StatusCode::kCorruption);
  // Manifest CRC disagrees with the file (stale manifest after a partial
  // rewrite).
  const uint32_t wrong = SegmentCrc(image) ^ 0xFF;
  EXPECT_EQ(ReadSegment(path, 42, &wrong).status().code(),
            StatusCode::kCorruption);
  // Missing file is kNotFound, not corruption: Open distinguishes the two.
  EXPECT_TRUE(
      ReadSegment(dir_ + "/absent.dat", 42, nullptr).status().IsNotFound());
}

}  // namespace
}  // namespace sprite::store
