// Tests for the Kademlia substrate: XOR bucket structure, greedy lookup
// convergence to the XOR-closest node, hop complexity, churn behaviour,
// and the ownership/replica primitives SPRITE needs from any overlay.

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sprite::dht {
namespace {

KademliaNetwork MakeNetwork(size_t n, int bits = 20) {
  KademliaNetwork net(KademliaOptions{bits, 8});
  for (size_t i = 0; i < n; ++i) {
    auto id = net.Join("node" + std::to_string(i));
    EXPECT_TRUE(id.ok());
  }
  return net;
}

TEST(KademliaTest, BucketIndexIsHighestBitFromTop) {
  KademliaNetwork net(KademliaOptions{8, 4});
  EXPECT_EQ(net.BucketIndex(0b10000000), 0);
  EXPECT_EQ(net.BucketIndex(0b01000000), 1);
  EXPECT_EQ(net.BucketIndex(0b00000001), 7);
  EXPECT_EQ(net.BucketIndex(0b00010110), 3);
}

TEST(KademliaTest, SingletonOwnsEverything) {
  KademliaNetwork net(KademliaOptions{16, 4});
  ASSERT_TRUE(net.JoinWithId(42, "solo").ok());
  auto res = net.FindClosest(42, 7);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->node, 42u);
  EXPECT_EQ(res->hops, 0);
  EXPECT_EQ(net.ResponsibleNode(7).value(), 42u);
}

TEST(KademliaTest, EmptyNetworkFails) {
  KademliaNetwork net;
  EXPECT_FALSE(net.Lookup(1).ok());
  EXPECT_FALSE(net.ResponsibleNode(1).ok());
  EXPECT_TRUE(net.ClosestNodes(1, 3).empty());
}

TEST(KademliaTest, JoinWithIdRejectsCollision) {
  KademliaNetwork net;
  ASSERT_TRUE(net.JoinWithId(5).ok());
  EXPECT_EQ(net.JoinWithId(5).status().code(), StatusCode::kAlreadyExists);
}

TEST(KademliaTest, ResponsibleNodeIsXorClosest) {
  KademliaNetwork net(KademliaOptions{8, 4});
  for (uint64_t id : {0b00010000u, 0b01000000u, 0b11000000u}) {
    ASSERT_TRUE(net.JoinWithId(id).ok());
  }
  EXPECT_EQ(net.ResponsibleNode(0b00010001).value(), 0b00010000u);
  EXPECT_EQ(net.ResponsibleNode(0b01000010).value(), 0b01000000u);
  EXPECT_EQ(net.ResponsibleNode(0b11111111).value(), 0b11000000u);
}

TEST(KademliaTest, ClosestNodesSortedByXorDistance) {
  KademliaNetwork net(KademliaOptions{8, 4});
  for (uint64_t id : {10u, 12u, 100u, 200u}) {
    ASSERT_TRUE(net.JoinWithId(id).ok());
  }
  auto closest = net.ClosestNodes(11, 3);
  ASSERT_EQ(closest.size(), 3u);
  EXPECT_EQ(closest[0], 10u);   // 11^10 = 1
  EXPECT_EQ(closest[1], 12u);   // 11^12 = 7
  EXPECT_EQ(closest[2], 100u);  // 11^100 = 111 < 11^200
  EXPECT_EQ(net.ClosestNodes(11, 99).size(), 4u);
}

TEST(KademliaTest, BuildPerfectLookupsMatchOracle) {
  KademliaNetwork net = MakeNetwork(64);
  net.BuildPerfect();
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const uint64_t key = net.space().Truncate(rng.NextUint64());
    auto res = net.Lookup(key);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->node, net.ResponsibleNode(key).value()) << key;
  }
}

TEST(KademliaTest, ProtocolJoinsRouteToOracleOwner) {
  KademliaNetwork net = MakeNetwork(48);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const uint64_t key = net.space().Truncate(rng.NextUint64());
    auto res = net.Lookup(key);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->node, net.ResponsibleNode(key).value()) << key;
  }
}

TEST(KademliaTest, LookupFromEveryOriginAgrees) {
  KademliaNetwork net = MakeNetwork(24);
  net.BuildPerfect();
  const uint64_t key = net.space().KeyForString("shared");
  const uint64_t expected = net.ResponsibleNode(key).value();
  for (uint64_t origin : net.AliveIds()) {
    auto res = net.FindClosest(origin, key);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->node, expected);
  }
}

TEST(KademliaTest, HopCountIsLogarithmic) {
  for (size_t n : {64u, 256u}) {
    KademliaNetwork net = MakeNetwork(n, 28);
    net.BuildPerfect();
    net.ClearStats();
    Rng rng(n);
    for (int i = 0; i < 400; ++i) {
      auto res = net.Lookup(net.space().Truncate(rng.NextUint64()));
      ASSERT_TRUE(res.ok());
    }
    const double mean = net.stats().hops.Mean();
    const double log2n = std::log2(static_cast<double>(n));
    EXPECT_GT(mean, 0.2 * log2n) << n;
    EXPECT_LT(mean, 1.5 * log2n) << n;
  }
}

TEST(KademliaTest, LookupFromDeadOriginRejected) {
  KademliaNetwork net = MakeNetwork(8);
  const uint64_t victim = net.AliveIds()[0];
  ASSERT_TRUE(net.Fail(victim).ok());
  EXPECT_TRUE(net.FindClosest(victim, 1).status().IsInvalidArgument());
  EXPECT_TRUE(net.Fail(victim).IsNotFound());  // already dead
}

TEST(KademliaTest, ChurnRepairedByRefresh) {
  KademliaNetwork net = MakeNetwork(64);
  net.BuildPerfect();
  std::vector<uint64_t> ids = net.AliveIds();
  Rng rng(3);
  rng.Shuffle(ids);
  for (size_t i = 0; i < 16; ++i) ASSERT_TRUE(net.Fail(ids[i]).ok());
  net.Refresh(2);

  Rng key_rng(5);
  size_t exact = 0;
  for (int i = 0; i < 200; ++i) {
    const uint64_t key = net.space().Truncate(key_rng.NextUint64());
    auto res = net.Lookup(key);
    ASSERT_TRUE(res.ok());
    exact += (res->node == net.ResponsibleNode(key).value());
  }
  // Refresh restores near-exact routing (greedy may terminate one node
  // short when an entire neighbourhood bucket died).
  EXPECT_GT(exact, 190u);
}

TEST(KademliaTest, StatsCountLookups) {
  KademliaNetwork net = MakeNetwork(16);
  net.BuildPerfect();
  net.ClearStats();
  (void)net.Lookup(123);
  (void)net.Lookup(456);
  EXPECT_EQ(net.stats().lookups, 2u);
  EXPECT_EQ(net.stats().hops.count(), 2u);
}

// The overlay-agnosticism the paper claims: for the same term keys, both
// substrates provide the primitives SPRITE uses — a unique owner and a
// deterministic replica set — and both resolve lookups to that owner.
TEST(KademliaTest, ChordAndKademliaBothProvideSpritePrimitives) {
  ChordRing chord(ChordOptions{20, 8});
  KademliaNetwork kad(KademliaOptions{20, 8});
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(chord.Join("peer" + std::to_string(i)).ok());
    ASSERT_TRUE(kad.Join("peer" + std::to_string(i)).ok());
  }
  chord.BuildPerfect();
  kad.BuildPerfect();

  for (const char* term : {"index", "retrieval", "chord", "kademlia",
                           "learning", "peer"}) {
    const uint64_t ckey = chord.space().KeyForString(term);
    const uint64_t kkey = kad.space().KeyForString(term);
    auto cres = chord.Lookup(ckey);
    auto kres = kad.Lookup(kkey);
    ASSERT_TRUE(cres.ok());
    ASSERT_TRUE(kres.ok());
    EXPECT_EQ(cres->node, chord.ResponsibleNode(ckey).value());
    EXPECT_EQ(kres->node, kad.ResponsibleNode(kkey).value());
    EXPECT_EQ(chord.SuccessorsOf(cres->node, 2).size(), 2u);
    EXPECT_EQ(kad.ClosestNodes(kkey, 2).size(), 2u);
  }
}

// Observability parity with ChordRing: the kad.* registry mirrors match
// the raw stats sample for sample.
TEST(KademliaTest, AttachedRegistryMirrorsLookupStats) {
  obs::MetricsRegistry metrics;
  KademliaNetwork net = MakeNetwork(16);
  net.BuildPerfect();
  net.ClearStats();
  net.AttachMetrics(&metrics);
  (void)net.Lookup(123);
  (void)net.Lookup(456);
  EXPECT_EQ(metrics.counter("kad.lookups"), net.stats().lookups);
  const Histogram* hops = metrics.histogram("kad.lookup_hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_EQ(hops->count(), net.stats().hops.count());
  EXPECT_DOUBLE_EQ(hops->Mean(), net.stats().hops.Mean());
}

// Regression: ClearStats() must drop the mirrored kad.* counters together
// with the raw stats — the same reset contract as ChordRing::ClearStats().
TEST(KademliaTest, ClearStatsErasesMirroredCounters) {
  obs::MetricsRegistry metrics;
  KademliaNetwork net = MakeNetwork(16);
  net.BuildPerfect();
  net.AttachMetrics(&metrics);
  (void)net.Lookup(123);
  ASSERT_GT(metrics.counter("kad.lookups"), 0u);

  net.ClearStats();
  EXPECT_EQ(net.stats().lookups, 0u);
  EXPECT_EQ(metrics.counter("kad.lookups"), 0u);
  EXPECT_EQ(metrics.counter("kad.failed_lookups"), 0u);
  EXPECT_EQ(metrics.histogram("kad.lookup_hops"), nullptr);

  // Both views agree again after new lookups.
  (void)net.Lookup(77);
  EXPECT_EQ(metrics.counter("kad.lookups"), net.stats().lookups);
}

// Inside an active span every queried node becomes a kad.hop child that
// advances the simulated clock by the hop cost, mirroring chord.hop.
TEST(KademliaTest, LookupsEmitHopSpansInsideActiveSpan) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_hop_cost_ms(50.0);
  KademliaNetwork net = MakeNetwork(16);
  net.BuildPerfect();
  net.ClearStats();
  net.AttachTracer(&tracer);

  (void)net.Lookup(123);  // outside any span: nothing is traced
  EXPECT_EQ(tracer.num_started(), 0u);

  {
    obs::ScopedSpan span(&tracer, "kad.lookup", "bench");
    ASSERT_TRUE(net.Lookup(456).ok());
  }
  ASSERT_EQ(tracer.num_retained(), 1u);
  const obs::Trace* trace = tracer.Retained()[0];
  size_t hop_spans = 0;
  for (const obs::Span& s : trace->spans) {
    if (s.name == "kad.hop") ++hop_spans;
  }
  EXPECT_GT(hop_spans, 0u);
  ASSERT_NE(trace->root(), nullptr);
  EXPECT_DOUBLE_EQ(trace->root()->duration_ms(),
                   50.0 * static_cast<double>(hop_spans));
}

// Parameterized oracle-agreement sweep.
class KademliaSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(KademliaSizeSweep, RoutingMatchesOracle) {
  KademliaNetwork net = MakeNetwork(GetParam(), 24);
  net.BuildPerfect();
  Rng rng(GetParam() * 13 + 1);
  for (int i = 0; i < 100; ++i) {
    const uint64_t key = net.space().Truncate(rng.NextUint64());
    auto res = net.Lookup(key);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->node, net.ResponsibleNode(key).value());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KademliaSizeSweep,
                         ::testing::Values(1, 2, 3, 5, 9, 17, 40, 90));

}  // namespace
}  // namespace sprite::dht
