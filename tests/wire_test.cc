// Wire-protocol tests (ISSUE 8): round-trips for every message type,
// malformed-frame rejection with typed statuses, and the byte-accounting
// parity audit — the fixed deltas between each message's encoded size and
// the charge the simulation's NetworkAccountant cost model books for the
// same send (documented next to each struct in net/wire.h and in
// DESIGN.md §14). Runs under ASan in tools/ci.sh --asan.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "p2p/message.h"

namespace sprite::net::wire {
namespace {

using p2p::MessageType;

// The canonical shapes of the sim cost model: 10-character terms (which
// cost p2p::kTermBytes = 12 with the wire's u16 length prefix) and
// one-term query records (p2p::kQueryRecordBytes = 40).
const std::string kTerm = "abcdefghij";
static_assert(sizeof("abcdefghij") - 1 + 2 == p2p::kTermBytes);

p2p::PostingEntry MakeEntry(uint32_t doc) {
  p2p::PostingEntry e;
  e.doc = doc;
  e.owner = 0x1122334455667788ull;
  e.term_freq = 7;
  e.doc_length = 321;
  e.num_distinct_terms = 45;
  return e;
}

WireQueryRecord MakeRecord() {
  WireQueryRecord rec;
  rec.id = 9;
  rec.hash_key = 0xdeadbeefcafef00dull;
  rec.seq = (42ull << 32) | 17;
  rec.terms = {kTerm};
  return rec;
}

void ExpectEntryEq(const p2p::PostingEntry& a, const p2p::PostingEntry& b) {
  EXPECT_EQ(a.doc, b.doc);
  EXPECT_EQ(a.owner, b.owner);
  EXPECT_EQ(a.term_freq, b.term_freq);
  EXPECT_EQ(a.doc_length, b.doc_length);
  EXPECT_EQ(a.num_distinct_terms, b.num_distinct_terms);
}

void ExpectRecordEq(const WireQueryRecord& a, const WireQueryRecord& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.hash_key, b.hash_key);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.terms, b.terms);
}

// Encodes, decodes and returns the re-decoded frame, checking the full
// byte-level cycle (header stamping + CRC) on the way.
Frame Recode(Frame frame) {
  frame.src = 100;
  frame.dst = 200;
  frame.request_id = 31337;
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  StatusOr<Frame> decoded = DecodeFrame(bytes);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, frame.type);
  EXPECT_EQ(decoded->flags, frame.flags);
  EXPECT_EQ(decoded->src, 100u);
  EXPECT_EQ(decoded->dst, 200u);
  EXPECT_EQ(decoded->request_id, 31337u);
  return *decoded;
}

// --- Round trips, one per message type --------------------------------------

TEST(WireRoundTrip, LookupHop) {
  LookupHop m;
  m.key = 0xfeedface12345678ull;
  m.origin = 4242;
  auto out = ParseLookupHop(Recode(ToFrame(m)));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->key, m.key);
  EXPECT_EQ(out->origin, m.origin);
}

TEST(WireRoundTrip, PublishTerm) {
  PublishTerm m;
  m.term = kTerm;
  m.entry = MakeEntry(3);
  auto out = ParsePublishTerm(Recode(ToFrame(m)));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->term, kTerm);
  ExpectEntryEq(out->entry, m.entry);
}

TEST(WireRoundTrip, WithdrawTerm) {
  WithdrawTerm m;
  m.term = kTerm;
  m.doc = 77;
  auto out = ParseWithdrawTerm(Recode(ToFrame(m)));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->term, kTerm);
  EXPECT_EQ(out->doc, 77u);
}

TEST(WireRoundTrip, QueryRequestPlain) {
  QueryRequest m;
  m.term = kTerm;
  auto out = ParseQueryRequest(Recode(ToFrame(m)));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->term, kTerm);
  EXPECT_FALSE(out->record.has_value());
  EXPECT_FALSE(out->record_only);
}

TEST(WireRoundTrip, QueryRequestWithRecord) {
  QueryRequest m;
  m.term = kTerm;
  m.record = MakeRecord();
  m.record_only = true;
  const Frame f = Recode(ToFrame(m));
  EXPECT_NE(f.flags & kFlagHasRecord, 0);
  EXPECT_NE(f.flags & kFlagRecordOnly, 0);
  auto out = ParseQueryRequest(f);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->term, kTerm);
  ASSERT_TRUE(out->record.has_value());
  ExpectRecordEq(*out->record, *m.record);
  EXPECT_TRUE(out->record_only);
}

TEST(WireRoundTrip, QueryResponse) {
  QueryResponse m;
  m.postings = {MakeEntry(1), MakeEntry(2), MakeEntry(3)};
  m.version = 12345;
  auto out = ParseQueryResponse(Recode(ToFrame(m)));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->postings.size(), 3u);
  for (size_t i = 0; i < 3; ++i) ExpectEntryEq(out->postings[i], m.postings[i]);
  EXPECT_EQ(out->version, 12345u);
}

TEST(WireRoundTrip, PollRequest) {
  PollRequest m;
  m.poll_terms = {kTerm, "zzzzzzzzzz", "qqqqqqqqqq"};
  m.my_terms = {kTerm, "qqqqqqqqqq"};
  m.cursors = {11, 22};
  auto out = ParsePollRequest(Recode(ToFrame(m)));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->poll_terms, m.poll_terms);
  EXPECT_EQ(out->my_terms, m.my_terms);
  EXPECT_EQ(out->cursors, m.cursors);
}

TEST(WireRoundTrip, PollResponse) {
  PollResponse m;
  m.records = {MakeRecord(), MakeRecord()};
  m.records[1].seq = 999;
  m.records[1].terms = {kTerm, "zzzzzzzzzz"};
  auto out = ParsePollResponse(Recode(ToFrame(m)));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->records.size(), 2u);
  ExpectRecordEq(out->records[0], m.records[0]);
  ExpectRecordEq(out->records[1], m.records[1]);
}

TEST(WireRoundTrip, Replicate) {
  Replicate m;
  m.term = kTerm;
  m.postings = {MakeEntry(5)};
  auto out = ParseReplicate(Recode(ToFrame(m)));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->term, kTerm);
  ASSERT_EQ(out->postings.size(), 1u);
  ExpectEntryEq(out->postings[0], m.postings[0]);
}

TEST(WireRoundTrip, Advisory) {
  Advisory m;
  m.term = kTerm;
  m.indexed_df = 4321;
  auto out = ParseAdvisory(Recode(ToFrame(m)));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->term, kTerm);
  EXPECT_EQ(out->indexed_df, 4321u);
}

TEST(WireRoundTrip, Heartbeat) {
  Heartbeat m;
  m.term = kTerm;
  m.doc = 88;
  auto out = ParseHeartbeat(Recode(ToFrame(m)));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->term, kTerm);
  EXPECT_EQ(out->doc, 88u);
}

TEST(WireRoundTrip, KeyTransfer) {
  KeyTransfer m;
  m.term = kTerm;
  m.postings = {MakeEntry(1), MakeEntry(2)};
  m.records = {MakeRecord()};
  auto out = ParseKeyTransfer(Recode(ToFrame(m)));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->term, kTerm);
  ASSERT_EQ(out->postings.size(), 2u);
  ASSERT_EQ(out->records.size(), 1u);
  ExpectRecordEq(out->records[0], m.records[0]);
}

TEST(WireRoundTrip, CachePush) {
  CachePush m;
  m.term = kTerm;
  m.postings = {MakeEntry(6), MakeEntry(7)};
  auto out = ParseCachePush(Recode(ToFrame(m)));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->term, kTerm);
  ASSERT_EQ(out->postings.size(), 2u);
}

TEST(WireRoundTrip, VersionCheckRequest) {
  VersionCheckRequest m;
  m.terms = {{kTerm, 3}, {"zzzzzzzzzz", 9}};
  m.record = MakeRecord();
  auto out = ParseVersionCheckRequest(Recode(ToFrame(m)));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->terms, m.terms);
  ASSERT_TRUE(out->record.has_value());
  ExpectRecordEq(*out->record, *m.record);
}

TEST(WireRoundTrip, VersionCheckResponse) {
  VersionCheckResponse m;
  m.current = 1;
  auto out = ParseVersionCheckResponse(Recode(ToFrame(m)));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->current, 1u);
}

TEST(WireRoundTrip, JoinRequestAndResponse) {
  JoinRequest m;
  m.self.id = 777;
  m.self.name = "n0";
  m.self.host = "127.0.0.1";
  m.self.udp_port = 1111;
  m.self.tcp_port = 2222;
  m.self.http_port = 3333;
  m.announce = true;
  const Frame f = Recode(ToFrame(m));
  EXPECT_NE(f.flags & kFlagAnnounce, 0);
  auto out = ParseJoinRequest(f);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->self.id, 777u);
  EXPECT_EQ(out->self.name, "n0");
  EXPECT_EQ(out->self.host, "127.0.0.1");
  EXPECT_EQ(out->self.udp_port, 1111);
  EXPECT_EQ(out->self.tcp_port, 2222);
  EXPECT_EQ(out->self.http_port, 3333);
  EXPECT_TRUE(out->announce);

  JoinResponse r;
  r.members = {m.self, m.self};
  r.members[1].id = 778;
  r.members[1].name = "n1";
  auto rout = ParseJoinResponse(Recode(ToFrame(r)));
  ASSERT_TRUE(rout.ok());
  ASSERT_EQ(rout->members.size(), 2u);
  EXPECT_EQ(rout->members[0].name, "n0");
  EXPECT_EQ(rout->members[1].id, 778u);
}

TEST(WireRoundTrip, LookupRequestAndResponse) {
  LookupRequest m;
  m.key = 0xabcdull;
  m.origin = 55;
  auto out = ParseLookupRequest(Recode(ToFrame(m)));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->key, 0xabcdull);
  EXPECT_EQ(out->origin, 55u);

  LookupResponse r;
  r.owner.id = 12;
  r.owner.name = "n2";
  r.hops = 3;
  r.final = true;
  const Frame f = Recode(ToFrame(r));
  EXPECT_NE(f.flags & kFlagFinal, 0);
  auto rout = ParseLookupResponse(f);
  ASSERT_TRUE(rout.ok());
  EXPECT_EQ(rout->owner.id, 12u);
  EXPECT_EQ(rout->hops, 3u);
  EXPECT_TRUE(rout->final);
}

// --- Malformed frames -------------------------------------------------------

TEST(WireMalformed, TruncatedFrame) {
  const std::vector<uint8_t> bytes = EncodeFrame(ToFrame(Heartbeat{kTerm, 1}));
  for (const size_t cut : {size_t{0}, size_t{10}, kHeaderBytes - 1,
                           kHeaderBytes, bytes.size() - 1}) {
    StatusOr<Frame> out = DecodeFrame(bytes.data(), cut);
    ASSERT_FALSE(out.ok()) << "cut=" << cut;
    EXPECT_EQ(out.status().code(), StatusCode::kCorruption) << "cut=" << cut;
  }
}

TEST(WireMalformed, BadMagic) {
  std::vector<uint8_t> bytes = EncodeFrame(ToFrame(Heartbeat{kTerm, 1}));
  bytes[0] ^= 0xff;
  StatusOr<Frame> out = DecodeFrame(bytes);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST(WireMalformed, UnknownVersion) {
  std::vector<uint8_t> bytes = EncodeFrame(ToFrame(Heartbeat{kTerm, 1}));
  bytes[4] = 0x7f;  // version low byte
  StatusOr<Frame> out = DecodeFrame(bytes);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireMalformed, UnknownMessageType) {
  std::vector<uint8_t> bytes = EncodeFrame(ToFrame(Heartbeat{kTerm, 1}));
  bytes[6] = p2p::kNumMessageTypes;
  StatusOr<Frame> out = DecodeFrame(bytes);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireMalformed, OversizedLength) {
  std::vector<uint8_t> bytes = EncodeFrame(ToFrame(Heartbeat{kTerm, 1}));
  const uint32_t huge = kMaxPayloadBytes + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[8 + i] = static_cast<uint8_t>(huge >> (8 * i));
  }
  StatusOr<FrameHeader> header = DecodeHeader(bytes.data(), bytes.size());
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kCorruption);
}

TEST(WireMalformed, LengthMismatch) {
  std::vector<uint8_t> bytes = EncodeFrame(ToFrame(Heartbeat{kTerm, 1}));
  bytes[8] += 1;  // header promises one more payload byte than the buffer
  StatusOr<Frame> out = DecodeFrame(bytes);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST(WireMalformed, ChecksumMismatch) {
  std::vector<uint8_t> bytes = EncodeFrame(ToFrame(Heartbeat{kTerm, 1}));
  bytes.back() ^= 0x01;  // flip one payload bit; CRC must catch it
  StatusOr<Frame> out = DecodeFrame(bytes);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST(WireMalformed, TruncatedPayload) {
  Frame f = ToFrame(PublishTerm{kTerm, MakeEntry(1)});
  f.payload.resize(f.payload.size() - 5);  // typed parse must fail cleanly
  StatusOr<PublishTerm> out = ParsePublishTerm(f);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST(WireMalformed, TrailingPayloadBytes) {
  Frame f = ToFrame(Heartbeat{kTerm, 1});
  f.payload.push_back(0);
  StatusOr<Heartbeat> out = ParseHeartbeat(f);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST(WireMalformed, WrongTypeTag) {
  StatusOr<Heartbeat> out = ParseHeartbeat(ToFrame(Advisory{kTerm, 1}));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireMalformed, AbsurdCollectionCount) {
  // A count field promising more elements than the payload could hold must
  // be rejected before any allocation is attempted.
  Frame f = ToFrame(QueryResponse{{MakeEntry(1)}, 1});
  // postings count is the first u32 of the payload
  for (int i = 0; i < 4; ++i) f.payload[i] = 0xff;
  StatusOr<QueryResponse> out = ParseQueryResponse(f);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

// --- Byte-accounting parity audit -------------------------------------------
//
// frame bytes == kMessageHeaderBytes + <sim cost-model payload> + Δ, with
// the canonical shapes above. These deltas are the documented, asserted
// contract between the sim's accounting and the real wire (DESIGN.md §14);
// changing an encoder or a cost constant must show up here.

size_t FrameBytes(const Frame& f) { return EncodeFrame(f).size(); }

TEST(WireParity, LookupHop) {
  // Δ = 0 against the per-hop charge (the sim books hops headerless).
  EXPECT_EQ(FrameBytes(ToFrame(LookupHop{1, 2})), p2p::kLookupHopBytes);
}

TEST(WireParity, PublishTerm) {  // Δ = 0
  EXPECT_EQ(FrameBytes(ToFrame(PublishTerm{kTerm, MakeEntry(1)})),
            p2p::kMessageHeaderBytes + p2p::kTermBytes +
                p2p::kPostingEntryBytes);
}

TEST(WireParity, WithdrawTerm) {  // Δ = +8 (the withdrawn doc id)
  EXPECT_EQ(FrameBytes(ToFrame(WithdrawTerm{kTerm, 1})),
            p2p::kMessageHeaderBytes + p2p::kTermBytes + 8);
}

TEST(WireParity, QueryRequest) {  // Δ = 0
  EXPECT_EQ(FrameBytes(ToFrame(QueryRequest{kTerm, std::nullopt, false})),
            p2p::kMessageHeaderBytes + p2p::kTermBytes);
}

TEST(WireParity, QueryResponse) {  // Δ = +12 (count + term version)
  const std::vector<p2p::PostingEntry> postings = {MakeEntry(1), MakeEntry(2)};
  EXPECT_EQ(FrameBytes(ToFrame(QueryResponse{postings, 1})),
            p2p::kMessageHeaderBytes +
                postings.size() * p2p::kPostingEntryBytes + 12);
}

TEST(WireParity, PollRequest) {  // Δ = +8 + 20·|my_terms|
  PollRequest m;
  m.poll_terms = {kTerm, "zzzzzzzzzz", "qqqqqqqqqq"};
  m.my_terms = {kTerm, "qqqqqqqqqq"};
  m.cursors = {0, 0};
  EXPECT_EQ(FrameBytes(ToFrame(m)),
            p2p::kMessageHeaderBytes +
                m.poll_terms.size() * p2p::kTermBytes + 8 +
                20 * m.my_terms.size());
}

TEST(WireParity, PollResponse) {  // Δ = +4 (record count)
  PollResponse m;
  m.records = {MakeRecord(), MakeRecord()};
  EXPECT_EQ(FrameBytes(ToFrame(m)),
            p2p::kMessageHeaderBytes +
                m.records.size() * p2p::kQueryRecordBytes + 4);
}

TEST(WireParity, Replicate) {  // Δ = +4 (posting count)
  Replicate m;
  m.term = kTerm;
  m.postings = {MakeEntry(1), MakeEntry(2), MakeEntry(3)};
  EXPECT_EQ(FrameBytes(ToFrame(m)),
            p2p::kMessageHeaderBytes + p2p::kTermBytes +
                m.postings.size() * p2p::kPostingEntryBytes + 4);
}

TEST(WireParity, Advisory) {  // Δ = +4 (indexed df)
  EXPECT_EQ(FrameBytes(ToFrame(Advisory{kTerm, 10})),
            p2p::kMessageHeaderBytes + p2p::kTermBytes + 4);
}

TEST(WireParity, Heartbeat) {  // Δ = +8 (probed doc id)
  EXPECT_EQ(FrameBytes(ToFrame(Heartbeat{kTerm, 1})),
            p2p::kMessageHeaderBytes + p2p::kTermBytes + 8);
}

TEST(WireParity, KeyTransferListOnly) {  // Δ = +8 (two counts)
  KeyTransfer m;
  m.term = kTerm;
  m.postings = {MakeEntry(1), MakeEntry(2)};
  EXPECT_EQ(FrameBytes(ToFrame(m)),
            p2p::kMessageHeaderBytes + p2p::kTermBytes +
                m.postings.size() * p2p::kPostingEntryBytes + 8);
}

TEST(WireParity, CachePush) {  // Δ = +4 (posting count)
  CachePush m;
  m.term = kTerm;
  m.postings = {MakeEntry(1)};
  EXPECT_EQ(FrameBytes(ToFrame(m)),
            p2p::kMessageHeaderBytes + p2p::kTermBytes +
                m.postings.size() * p2p::kPostingEntryBytes + 4);
}

TEST(WireParity, VersionCheck) {
  // Request: the sim charges kTermBytes + 8 per checked term; Δ = +4 (the
  // pair count). Response: exactly kVersionBytes; Δ = 0.
  VersionCheckRequest m;
  m.terms = {{kTerm, 1}, {"zzzzzzzzzz", 2}};
  EXPECT_EQ(FrameBytes(ToFrame(m)),
            p2p::kMessageHeaderBytes +
                m.terms.size() * (p2p::kTermBytes + 8) + 4);
  EXPECT_EQ(FrameBytes(ToFrame(VersionCheckResponse{1})),
            p2p::kMessageHeaderBytes + p2p::kVersionBytes);
}

TEST(WireParity, CanonicalRecordMatchesCostConstant) {
  // One one-term record on the wire weighs exactly what the sim charges
  // per record (8 id + 8 hash + 8 seq + 4 count + 12 term = 40).
  PollResponse one;
  one.records = {MakeRecord()};
  PollResponse none;
  EXPECT_EQ(FrameBytes(ToFrame(one)) - FrameBytes(ToFrame(none)),
            p2p::kQueryRecordBytes);
}


// --- Trace context in the reserved header bytes (DESIGN.md §16) -------------

TEST(WireTraceContext, RoundTripsWhenFlagged) {
  LookupHop m;
  m.key = 0x1234;
  Frame frame = ToFrame(m);
  frame.flags |= kFlagTraced;
  frame.trace_id = 0xdeadbeefu;
  frame.parent_span = 0x0badf00du;
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  // The context lives in header bytes 40-47, little-endian u32 pair.
  EXPECT_EQ(bytes[40], 0xef);
  EXPECT_EQ(bytes[41], 0xbe);
  EXPECT_EQ(bytes[42], 0xad);
  EXPECT_EQ(bytes[43], 0xde);
  EXPECT_EQ(bytes[44], 0x0d);
  EXPECT_EQ(bytes[45], 0xf0);
  EXPECT_EQ(bytes[46], 0xad);
  EXPECT_EQ(bytes[47], 0x0b);
  StatusOr<Frame> decoded = DecodeFrame(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->traced());
  EXPECT_EQ(decoded->trace_id, 0xdeadbeefu);
  EXPECT_EQ(decoded->parent_span, 0x0badf00du);
}

TEST(WireTraceContext, UntracedFramesKeepReservedBytesZero) {
  // The v1 invariant the sim bus and the golden dumps rely on: without the
  // flag the eight bytes encode as zero even if the struct fields are set.
  LookupHop m;
  m.key = 0x1234;
  Frame frame = ToFrame(m);
  frame.trace_id = 0xffffffffu;
  frame.parent_span = 0xffffffffu;
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  for (size_t i = 40; i < 48; ++i) {
    EXPECT_EQ(bytes[i], 0) << "reserved byte " << i;
  }
  StatusOr<Frame> decoded = DecodeFrame(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->traced());
  EXPECT_EQ(decoded->trace_id, 0u);
  EXPECT_EQ(decoded->parent_span, 0u);
}

TEST(WireTraceContext, FlaggedZeroTraceIdIsNotTraced) {
  // A flag with no id is adoption-inert: traced() gates on both.
  LookupHop m;
  Frame frame = ToFrame(m);
  frame.flags |= kFlagTraced;
  frame.trace_id = 0;
  frame.parent_span = 7;
  StatusOr<Frame> decoded = DecodeFrame(EncodeFrame(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->traced());
}

TEST(WireTraceContext, UnflaggedGarbageInReservedBytesIsIgnored) {
  // Forward/backward compatibility: a decoder must ignore bytes 40-47
  // when the flag is clear (the crc never covered them).
  LookupHop m;
  m.key = 0x1234;
  Frame frame = ToFrame(m);
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  for (size_t i = 40; i < 48; ++i) bytes[i] = 0xa5;
  StatusOr<Frame> decoded = DecodeFrame(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded->traced());
  EXPECT_EQ(decoded->trace_id, 0u);
  EXPECT_EQ(decoded->parent_span, 0u);
}

TEST(WireTraceContext, ContextDoesNotDisturbPayloadOrChecksum) {
  // The crc covers the payload only, so stamping trace context leaves the
  // checksum and the decoded message untouched.
  PublishTerm m;
  m.term = kTerm;
  m.entry = MakeEntry(3);
  Frame plain = ToFrame(m);
  Frame traced = plain;
  traced.flags |= kFlagTraced;
  traced.trace_id = 42;
  traced.parent_span = 43;
  const std::vector<uint8_t> a = EncodeFrame(plain);
  const std::vector<uint8_t> b = EncodeFrame(traced);
  ASSERT_EQ(a.size(), b.size());
  StatusOr<FrameHeader> ha = DecodeHeader(a.data(), a.size());
  StatusOr<FrameHeader> hb = DecodeHeader(b.data(), b.size());
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(hb.ok());
  EXPECT_EQ(ha->checksum, hb->checksum);
  auto out = ParsePublishTerm(*DecodeFrame(b));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->term, kTerm);
  ExpectEntryEq(out->entry, m.entry);
}

}  // namespace
}  // namespace sprite::net::wire
