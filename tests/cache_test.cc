// Tests for the querying-peer cache subsystem (src/cache, DESIGN.md §9):
// the LRU+TTL policy, the normalized result-cache key, the per-term
// version counters that drive learning-aware invalidation, the
// CacheManager's stats/registry mirror contract, and the SpriteSystem
// integration — cached answers byte-identical to fresh ones, stale entries
// caught by the version check (or counted when served blindly), and
// deterministic observability dumps with caching on.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "cache/lru_cache.h"
#include "common/check.h"
#include "core/indexing_peer.h"
#include "core/sprite_system.h"
#include "corpus/corpus.h"
#include "obs/metrics.h"
#include "p2p/message.h"
#include "text/term_dict.h"
#include "text/term_vector.h"

namespace sprite::cache {
namespace {

// Interns a spelling in the global dictionary (the one the system uses).
TermId T(const char* term) { return text::TermDict::Global().Intern(term); }

core::PostingListPtr PL(std::vector<core::PostingEntry> entries) {
  return std::make_shared<core::PostingList>(std::move(entries));
}

// The immutable store object StoreReplica / CachePostings / the posting
// cache tier now hold (entries must be doc-sorted).
core::StoredPostingsPtr SP(std::vector<core::PostingEntry> entries) {
  return core::StoredPostings::FromSortedList(std::move(entries), {});
}

// --- LruTtlCache --------------------------------------------------------

TEST(LruTtlCacheTest, HitRefreshesRecencyAndCapEvictsLru) {
  LruTtlCache<std::string, int> c(CacheLimits{/*max_entries=*/3, 0, 0.0});
  c.Put("a", 1, 8, 0.0);
  c.Put("b", 2, 8, 0.0);
  c.Put("c", 3, 8, 0.0);
  ASSERT_NE(c.Get("a", 0.0).value, nullptr);  // "b" is now the LRU entry

  const auto put = c.Put("d", 4, 8, 0.0);
  EXPECT_EQ(put.evicted, 1u);
  EXPECT_EQ(c.entries(), 3u);
  EXPECT_EQ(c.Get("b", 0.0).value, nullptr);
  EXPECT_NE(c.Get("a", 0.0).value, nullptr);
  EXPECT_NE(c.Get("c", 0.0).value, nullptr);
  EXPECT_NE(c.Get("d", 0.0).value, nullptr);
}

TEST(LruTtlCacheTest, ByteCapChargesCallerBytesAndEvictsInLruOrder) {
  LruTtlCache<std::string, int> c(CacheLimits{0, /*max_bytes=*/30, 0.0});
  // entry_bytes is the caller's total footprint (payload + wire key).
  c.Put("aa", 1, 10, 0.0);  // 10 bytes
  c.Put("bb", 2, 10, 0.0);  // 20 bytes
  c.Put("cc", 3, 10, 0.0);  // 30 bytes: at the cap, nothing evicted
  EXPECT_EQ(c.entries(), 3u);
  EXPECT_EQ(c.bytes(), 30u);

  const auto put = c.Put("dd", 4, 10, 0.0);  // 40 > 30: evict "aa"
  EXPECT_EQ(put.evicted, 1u);
  EXPECT_EQ(c.bytes(), 30u);
  EXPECT_EQ(c.Get("aa", 0.0).value, nullptr);
}

TEST(LruTtlCacheTest, OversizedNewestEntryIsKept) {
  LruTtlCache<std::string, int> c(CacheLimits{0, /*max_bytes=*/10, 0.0});
  c.Put("k", 1, 100, 0.0);
  EXPECT_EQ(c.entries(), 1u);
  EXPECT_NE(c.Get("k", 0.0).value, nullptr);
}

TEST(LruTtlCacheTest, InternedKeysWorkUnchanged) {
  // The production posting tier keys on TermId; the policy is agnostic.
  LruTtlCache<TermId, int> c(CacheLimits{/*max_entries=*/2, 0, 0.0});
  c.Put(T("cat"), 1, 8, 0.0);
  c.Put(T("dog"), 2, 8, 0.0);
  ASSERT_NE(c.Get(T("cat"), 0.0).value, nullptr);
  c.Put(T("emu"), 3, 8, 0.0);  // evicts "dog", the LRU entry
  EXPECT_EQ(c.Get(T("dog"), 0.0).value, nullptr);
  EXPECT_NE(c.Get(T("emu"), 0.0).value, nullptr);
}

TEST(LruTtlCacheTest, TtlExpiresOnLookup) {
  LruTtlCache<std::string, int> c(CacheLimits{0, 0, /*ttl_ms=*/100.0});
  c.Put("k", 1, 8, /*now_ms=*/0.0);
  EXPECT_NE(c.Get("k", 100.0).value, nullptr);  // exactly at the TTL: live

  const auto expired = c.Get("k", 100.5);
  EXPECT_EQ(expired.value, nullptr);
  EXPECT_TRUE(expired.expired);
  EXPECT_EQ(c.entries(), 0u);
  EXPECT_EQ(c.bytes(), 0u);
  // A second miss on the same key is a plain miss, not another expiry.
  EXPECT_FALSE(c.Get("k", 101.0).expired);
}

TEST(LruTtlCacheTest, ReplaceAndEraseKeepByteAccounting) {
  LruTtlCache<std::string, std::string> c(CacheLimits{});
  c.Put("k", "v1", 10, 0.0);
  const auto put = c.Put("k", "v2", 5, 1.0);
  EXPECT_TRUE(put.replaced);
  EXPECT_EQ(c.entries(), 1u);
  EXPECT_EQ(c.bytes(), 5u);
  EXPECT_EQ(*c.Get("k", 1.0).value, "v2");

  EXPECT_TRUE(c.Erase("k"));
  EXPECT_FALSE(c.Erase("k"));
  EXPECT_EQ(c.bytes(), 0u);
}

// --- ResultKey ----------------------------------------------------------

ResultKey RK(std::vector<const char*> terms, size_t k) {
  std::vector<TermId> ids;
  ids.reserve(terms.size());
  for (const char* term : terms) ids.push_back(T(term));
  return MakeResultKey(std::move(ids), k);
}

TEST(ResultKeyTest, NormalizesOrderAndDuplicates) {
  const ResultKey key = RK({"dog", "cat"}, 10);
  EXPECT_EQ(key, RK({"cat", "dog"}, 10));
  EXPECT_EQ(key, RK({"dog", "cat", "dog"}, 10));
  EXPECT_FALSE(key == RK({"cat"}, 10));
  EXPECT_NE(ResultKeyHash{}(key), ResultKeyHash{}(RK({"cat"}, 10)));
}

TEST(ResultKeyTest, CutoffIsPartOfTheKey) {
  EXPECT_FALSE(RK({"cat"}, 5) == RK({"cat"}, 50));
}

TEST(ResultKeyTest, DistinctTermsNeverShareAKey) {
  // Interned ids are per-spelling, so the string-era boundary collision
  // ("ab"+"c" vs "a"+"bc") is impossible by construction.
  EXPECT_FALSE(RK({"ab", "c"}, 10) == RK({"a", "bc"}, 10));
}

TEST(ResultKeyTest, WireBytesMatchTheLegacyStringKey) {
  // The legacy key was "<term>\x1f" per sorted term, then '#' + decimal k;
  // the interned key still charges exactly those bytes, so byte caps and
  // occupancy gauges are representation-independent.
  EXPECT_EQ(ResultKeyWireBytes(RK({"cat", "dog"}, 10)),
            std::string("cat\x1f" "dog\x1f" "#10").size());
  EXPECT_EQ(ResultKeyWireBytes(RK({"a"}, 5)),
            std::string("a\x1f" "#5").size());
}

// --- IndexingPeer term versions ----------------------------------------

core::PostingEntry P(core::DocId doc, uint32_t tf) {
  core::PostingEntry e;
  e.doc = doc;
  e.owner = 1;
  e.term_freq = tf;
  e.doc_length = 10;
  e.num_distinct_terms = 5;
  return e;
}

TEST(TermVersionTest, BumpsOnContentChangeOnly) {
  core::IndexingPeer peer(1, 8);
  EXPECT_EQ(peer.TermVersion(T("cat")), 0u);

  peer.AddPosting(T("cat"), P(1, 3));
  EXPECT_EQ(peer.TermVersion(T("cat")), 1u);
  peer.AddPosting(T("cat"), P(1, 3));  // identical re-publish (heartbeat)
  EXPECT_EQ(peer.TermVersion(T("cat")), 1u);
  peer.AddPosting(T("cat"), P(1, 4));  // changed term frequency
  EXPECT_EQ(peer.TermVersion(T("cat")), 2u);
  peer.AddPosting(T("cat"), P(2, 1));  // new document appended
  EXPECT_EQ(peer.TermVersion(T("cat")), 3u);
  EXPECT_EQ(peer.TermVersion(T("dog")), 0u);
}

TEST(TermVersionTest, RemovePostingBumpsWhenAnyStoreChanges) {
  core::IndexingPeer peer(1, 8);
  peer.AddPosting(T("cat"), P(1, 3));
  const uint64_t v = peer.TermVersion(T("cat"));

  EXPECT_FALSE(peer.RemovePosting(T("cat"), 99));  // absent: nothing changed
  EXPECT_EQ(peer.TermVersion(T("cat")), v);
  EXPECT_TRUE(peer.RemovePosting(T("cat"), 1));
  EXPECT_EQ(peer.TermVersion(T("cat")), v + 1);

  // A withdrawal that only scrubs the replica store still changes what
  // this peer can serve, so it must bump too (even though it returns
  // false: no primary posting was present).
  peer.StoreReplica(T("dog"), SP({P(7, 2)}));
  const uint64_t dog_v = peer.TermVersion(T("dog"));
  EXPECT_FALSE(peer.RemovePosting(T("dog"), 7));
  EXPECT_EQ(peer.TermVersion(T("dog")), dog_v + 1);
}

TEST(TermVersionTest, StoreReplicaBumpsOnlyWhenContentDiffers) {
  core::IndexingPeer peer(1, 8);
  peer.StoreReplica(T("cat"), SP({P(1, 3)}));
  EXPECT_EQ(peer.TermVersion(T("cat")), 1u);
  // Periodic refresh, same content — even as a distinct snapshot object.
  peer.StoreReplica(T("cat"), SP({P(1, 3)}));
  EXPECT_EQ(peer.TermVersion(T("cat")), 1u);
  peer.StoreReplica(T("cat"), SP({P(1, 3), P(2, 1)}));
  EXPECT_EQ(peer.TermVersion(T("cat")), 2u);
  // An empty snapshot over an empty slot is not a change either.
  peer.StoreReplica(T("emu"), SP({}));
  EXPECT_EQ(peer.TermVersion(T("emu")), 0u);
}

// --- CacheManager -------------------------------------------------------

CachedResult MakeResult(core::DocId doc, PeerId peer, uint64_t version) {
  CachedResult r;
  r.results.push_back({doc, 1.0});
  r.sources[T("cat")] = TermSource{peer, version};
  return r;
}

TEST(CacheManagerTest, StatsAndRegistryMirrorsAgree) {
  obs::MetricsRegistry registry;
  CacheOptions options;
  options.result_enabled = true;
  options.posting_enabled = true;
  CacheManager cm(options);
  cm.AttachMetrics(&registry);

  const ResultKey key = RK({"cat"}, 10);
  EXPECT_EQ(cm.LookupResult(1, key, 0.0), nullptr);
  cm.InsertResult(1, key, MakeResult(5, 2, 1), 0.0);
  ASSERT_NE(cm.LookupResult(1, key, 0.0), nullptr);
  cm.NoteValidation(CacheTier::kResult);
  cm.NoteStaleReject(CacheTier::kResult);
  cm.InvalidateResult(1, key);
  cm.InvalidateResult(1, key);  // already gone: not an invalidation

  const CacheTierStats& s = cm.stats(CacheTier::kResult);
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.validations, 1u);
  EXPECT_EQ(s.stale_rejects, 1u);
  EXPECT_EQ(registry.counter("cache.result.lookups"), s.lookups);
  EXPECT_EQ(registry.counter("cache.result.hits"), s.hits);
  EXPECT_EQ(registry.counter("cache.result.misses"), s.misses);
  EXPECT_EQ(registry.counter("cache.result.inserts"), s.inserts);
  EXPECT_EQ(registry.counter("cache.result.invalidations"), s.invalidations);
  EXPECT_EQ(registry.counter("cache.result.validations"), s.validations);
  EXPECT_EQ(registry.counter("cache.result.stale_rejects"), s.stale_rejects);
  EXPECT_EQ(registry.gauge("cache.result.entries"), 0.0);
}

TEST(CacheManagerTest, ClearStatsResetsBothViewsButKeepsContents) {
  obs::MetricsRegistry registry;
  CacheOptions options;
  options.result_enabled = true;
  options.posting_enabled = true;
  CacheManager cm(options);
  cm.AttachMetrics(&registry);

  const ResultKey key = RK({"cat"}, 10);
  cm.InsertResult(1, key, MakeResult(5, 2, 1), 0.0);
  CachedPostings cp;
  cp.postings = SP({P(5, 3)});
  cp.source = TermSource{2, 1};
  cm.InsertPostings(1, T("cat"), std::move(cp), 0.0);
  ASSERT_NE(cm.LookupResult(1, key, 0.0), nullptr);

  cm.ClearStats();

  // Stats and mirrored counters are zero together...
  EXPECT_EQ(cm.stats(CacheTier::kResult).lookups, 0u);
  EXPECT_EQ(cm.stats(CacheTier::kResult).inserts, 0u);
  EXPECT_EQ(cm.stats(CacheTier::kPosting).inserts, 0u);
  EXPECT_EQ(registry.counter("cache.result.lookups"), 0u);
  EXPECT_EQ(registry.counter("cache.result.inserts"), 0u);
  EXPECT_EQ(registry.counter("cache.posting.inserts"), 0u);
  // ...but the cached contents survive (a metrics reset must not cool the
  // caches), and the occupancy gauges still reflect them.
  EXPECT_EQ(cm.entries(CacheTier::kResult), 1u);
  EXPECT_EQ(cm.entries(CacheTier::kPosting), 1u);
  EXPECT_EQ(registry.gauge("cache.result.entries"), 1.0);
  EXPECT_EQ(registry.gauge("cache.posting.entries"), 1.0);
  ASSERT_NE(cm.LookupResult(1, key, 0.0), nullptr);

  cm.Clear();
  EXPECT_EQ(cm.entries(CacheTier::kResult), 0u);
  EXPECT_EQ(cm.bytes(CacheTier::kResult), 0u);
  EXPECT_EQ(registry.gauge("cache.result.entries"), 0.0);
}

// --- SpriteSystem integration ------------------------------------------

text::TermVector TV(std::vector<std::string> tokens) {
  return text::TermVector::FromTokens(tokens);
}

corpus::Query Q(corpus::QueryId id, std::vector<std::string> terms) {
  return corpus::Query{id, std::move(terms)};
}

core::SpriteConfig CachedConfig(bool validate = true) {
  core::SpriteConfig c;
  c.num_peers = 16;
  c.initial_terms = 2;
  c.terms_per_iteration = 2;
  c.max_index_terms = 6;
  c.enable_result_cache = true;
  c.enable_posting_cache = true;
  c.cache_validate = validate;
  return c;
}

corpus::Corpus PetCorpus() {
  corpus::Corpus corpus;
  corpus.AddDocument(
      TV({"cat", "cat", "cat", "feline", "feline", "whisker", "purr"}));
  corpus.AddDocument(
      TV({"dog", "dog", "dog", "canine", "canine", "leash", "bark"}));
  corpus.AddDocument(TV({"pet", "pet", "cat", "dog", "food"}));
  return corpus;
}

TEST(CacheIntegrationTest, RepeatSearchHitsAndMatchesByteForByte) {
  corpus::Corpus corpus = PetCorpus();
  core::SpriteSystem system(CachedConfig());
  ASSERT_TRUE(system.ShareCorpus(corpus).ok());

  // Each issuance runs at a (deterministically) different querying peer
  // and the caches are per peer, so a single repeat may land cold. Over 33
  // issuances on 16 peers, every peer misses at most once (the index never
  // changes, so validation always passes): at least 17 must hit.
  auto first = system.Search(Q(1, {"cat", "dog"}), 10, /*record=*/false);
  ASSERT_TRUE(first.ok());
  const uint64_t bytes_first = system.network_stats().TotalBytes();

  for (int i = 0; i < 32; ++i) {
    auto repeat = system.Search(Q(1, {"dog", "cat"}), 10, /*record=*/false);
    ASSERT_TRUE(repeat.ok());
    EXPECT_EQ(first.value(), repeat.value());  // byte-identical answers
  }

  const cache::CacheTierStats& s = system.query_cache().stats(
      cache::CacheTier::kResult);
  EXPECT_GE(s.hits, 17u);
  EXPECT_EQ(s.stale_rejects, 0u);
  EXPECT_GE(s.validations, s.hits);  // every hit was version-checked
  EXPECT_GT(system.network_stats().MessagesOf(
                p2p::MessageType::kVersionCheck),
            0u);
  // The 32 repeats (mostly validated hits) cost less than 32 cold runs.
  EXPECT_LT(system.network_stats().TotalBytes() - bytes_first,
            32 * bytes_first);
}

TEST(CacheIntegrationTest, IndexChangeIsCaughtByTheVersionCheck) {
  corpus::Corpus corpus = PetCorpus();

  // Twin systems, identical except for caching; both see the same change.
  core::SpriteConfig plain_config = CachedConfig();
  plain_config.enable_result_cache = false;
  plain_config.enable_posting_cache = false;
  core::SpriteSystem cached(CachedConfig());
  core::SpriteSystem plain(plain_config);
  ASSERT_TRUE(cached.ShareCorpus(corpus).ok());
  ASSERT_TRUE(plain.ShareCorpus(corpus).ok());

  const corpus::Query q = Q(1, {"cat", "dog"});
  for (int i = 0; i < 32; ++i) {  // warm the tiers at many querying peers
    ASSERT_TRUE(cached.Search(q, 10, /*record=*/false).ok());
  }

  // Re-share document 2 with different term frequencies: its postings are
  // re-published, bumping the versions the cached entries were built from.
  corpus::Document v2;
  v2.id = 2;
  v2.terms = TV({"pet", "pet", "pet", "cat", "dog", "dog", "food"});
  ASSERT_TRUE(cached.UpdateDocument(v2).ok());
  ASSERT_TRUE(plain.UpdateDocument(v2).ok());

  auto fresh = plain.Search(q, 10, /*record=*/false);
  ASSERT_TRUE(fresh.ok());
  for (int i = 0; i < 32; ++i) {
    auto checked = cached.Search(q, 10, /*record=*/false);
    ASSERT_TRUE(checked.ok());
    // Stale entries are rejected and refetched; fresh entries hit. Either
    // way the cached system returns exactly what an uncached one computes
    // post-update (the ranking does not depend on the querying peer).
    EXPECT_EQ(checked.value(), fresh.value());
  }

  const cache::CacheTierStats& s = cached.query_cache().stats(
      cache::CacheTier::kResult);
  EXPECT_GE(s.stale_rejects, 1u);
  EXPECT_EQ(s.stale_serves, 0u);
}

TEST(CacheIntegrationTest, BlindModeServesStaleAndCountsIt) {
  corpus::Corpus corpus = PetCorpus();
  core::SpriteSystem system(CachedConfig(/*validate=*/false));
  ASSERT_TRUE(system.ShareCorpus(corpus).ok());

  const corpus::Query q = Q(1, {"cat", "dog"});
  auto first = system.Search(q, 10, /*record=*/false);
  ASSERT_TRUE(first.ok());
  const ir::RankedList stale_answer = first.value();
  for (int i = 0; i < 32; ++i) {  // warm the tiers at many querying peers
    ASSERT_TRUE(system.Search(q, 10, /*record=*/false).ok());
  }

  corpus::Document v2;
  v2.id = 2;
  v2.terms = TV({"pet", "pet", "pet", "cat", "dog", "dog", "food"});
  ASSERT_TRUE(system.UpdateDocument(v2).ok());

  // Blind hits serve the pre-update answer unchanged at zero traffic;
  // the oracle counts them as stale instead of hiding the divergence.
  size_t served_stale = 0;
  for (int i = 0; i < 32; ++i) {
    auto repeat = system.Search(q, 10, /*record=*/false);
    ASSERT_TRUE(repeat.ok());
    if (repeat.value() == stale_answer) ++served_stale;
  }
  const cache::CacheTierStats& s = system.query_cache().stats(
      cache::CacheTier::kResult);
  EXPECT_GE(s.stale_serves, 1u);
  EXPECT_GE(served_stale, s.stale_serves);
  EXPECT_EQ(s.validations, 0u);
  EXPECT_EQ(s.stale_rejects, 0u);
  EXPECT_EQ(system.network_stats().MessagesOf(
                p2p::MessageType::kVersionCheck),
            0u);
}

TEST(CacheIntegrationTest, CachingStaysOffByDefault) {
  corpus::Corpus corpus = PetCorpus();
  core::SpriteConfig config = CachedConfig();
  config.enable_result_cache = false;
  config.enable_posting_cache = false;
  core::SpriteSystem system(config);
  ASSERT_TRUE(system.ShareCorpus(corpus).ok());
  EXPECT_FALSE(system.query_cache().enabled());

  ASSERT_TRUE(system.Search(Q(1, {"cat", "dog"}), 10, false).ok());
  ASSERT_TRUE(system.Search(Q(2, {"cat", "dog"}), 10, false).ok());
  EXPECT_EQ(system.query_cache().stats(cache::CacheTier::kResult).lookups,
            0u);
  EXPECT_EQ(system.query_cache().stats(cache::CacheTier::kPosting).lookups,
            0u);
  EXPECT_EQ(system.network_stats().MessagesOf(
                p2p::MessageType::kVersionCheck),
            0u);
}

// Runs an identical cached workload (record, share, learn, repeat
// searches) and exports every observability surface.
struct DumpSet {
  std::string metrics, perfetto, jsonl;
};

DumpSet CachedRun(uint64_t seed) {
  corpus::Corpus corpus = PetCorpus();
  core::SpriteConfig config = CachedConfig();
  config.seed = seed;
  core::SpriteSystem system(config);
  system.mutable_tracer().set_enabled(true);
  system.RecordQuery(Q(1, {"cat", "dog"}));
  SPRITE_CHECK_OK(system.ShareCorpus(corpus));
  system.RunLearningIteration();
  // 20 issuances over 16 peers: the pigeonhole guarantees result-cache
  // hits, so the compared dumps cover the hit path too.
  for (uint32_t i = 0; i < 20; ++i) {
    (void)system.Search(Q(2, {"cat", "dog"}), 10, /*record=*/false);
  }
  (void)system.Search(Q(3, {"feline", "pet"}), 10, /*record=*/false);
  return DumpSet{system.metrics().Snapshot().ToJson(),
                 system.tracer().ToPerfettoJson(),
                 system.tracer().ToJsonl()};
}

TEST(CacheIntegrationTest, IdenticalSeedsYieldByteIdenticalDumps) {
  const DumpSet a = CachedRun(/*seed=*/7);
  const DumpSet b = CachedRun(/*seed=*/7);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.perfetto, b.perfetto);
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_FALSE(a.metrics.empty());
  // The workload actually exercised the cache: the mirrored hit counter is
  // part of the compared payload.
  EXPECT_NE(a.metrics.find("cache.result.hits"), std::string::npos);
}

}  // namespace
}  // namespace sprite::cache
